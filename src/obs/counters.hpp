// Per-partition utilization and queue-depth counters.
//
// The scheduler balances partition queues it can only model; these counters
// report what each partition actually did: queries enqueued/completed, the
// in-flight depth high-water mark, and cumulative busy time, from which
// utilization over a run's makespan follows. One counter per stage — the
// CPU partition, the translation partition, each per-device dispatch stage
// and each GPU partition queue — in a fixed, deterministic order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace holap {

class TablePrinter;

/// Counters of one partition/stage. Not thread-safe; callers that share a
/// counter across threads (the async executor) serialise their updates.
struct PartitionCounters {
  std::string name;           ///< "cpu", "translation", "dispatch0", "gpu0"…
  std::size_t enqueued = 0;   ///< queries handed to this stage
  std::size_t completed = 0;  ///< queries the stage finished
  std::size_t shed = 0;       ///< queries evicted from this stage unserved
  std::size_t depth = 0;      ///< currently in flight (enqueued − completed)
  std::size_t max_depth = 0;  ///< high-water mark of `depth`
  Seconds busy{};             ///< cumulative service time
  // Fault-tolerance counters (all zero while fault injection is off):
  std::size_t failed = 0;     ///< queries this stage failed (crash/handoff)
  std::size_t retried = 0;    ///< failed queries re-submitted for retry
  std::size_t failovers = 0;  ///< retried queries this stage completed
  std::size_t breaker_transitions = 0;  ///< circuit-breaker state changes
  std::string health = "healthy";       ///< current PartitionHealth gauge

  void on_enqueue() {
    ++enqueued;
    ++depth;
    max_depth = std::max(max_depth, depth);
  }
  void on_complete(Seconds service) {
    ++completed;
    if (depth > 0) --depth;
    busy += service;
  }
  /// A queued item left without being served (load shedding).
  void on_shed() {
    ++shed;
    if (depth > 0) --depth;
  }
  /// An in-flight item was lost to a partition fault.
  void on_failed() {
    ++failed;
    if (depth > 0) --depth;
  }
  /// A queued item was drained and re-routed by elastic repartitioning:
  /// it leaves this stage's depth without counting as shed or failed (it
  /// still resolves normally elsewhere).
  void on_drained() {
    if (depth > 0) --depth;
  }
  /// Busy fraction of `makespan` (0 when the run is empty).
  double utilization(Seconds makespan) const {
    return makespan > Seconds{0.0} ? busy / makespan : 0.0;
  }
};

/// End-of-run gauges of one GPU device, published when the policy models
/// an elastic device catalog (sched/devices.hpp). All zero/empty while the
/// catalog is disabled.
struct DeviceGauges {
  std::string name;       ///< "device0"…
  int active_queues = 0;  ///< partitions currently in the candidate set
  int total_sms = 0;      ///< SMs across those partitions
  std::size_t merges = 0;  ///< repartition operations applied on the device
  std::size_t splits = 0;
  std::size_t drained = 0;  ///< queries drained and re-placed by operations
};

/// Render a counter set as an aligned table ("partition", "enqueued",
/// "completed", "max depth", "busy [s]", "utilization") over `makespan`.
TablePrinter counters_table(const std::vector<PartitionCounters>& counters,
                            Seconds makespan);

}  // namespace holap
