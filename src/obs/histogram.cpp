#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace holap {

LatencyHistogram::LatencyHistogram(int buckets_per_decade)
    : buckets_per_decade_(buckets_per_decade) {
  HOLAP_REQUIRE(buckets_per_decade_ >= 1,
                "histogram needs at least one bucket per decade");
  buckets_.assign(
      static_cast<std::size_t>(buckets_per_decade_) * kDecades + 1, 0);
}

Seconds LatencyHistogram::bucket_lower(std::size_t i) const {
  HOLAP_REQUIRE(i < buckets_.size(), "bucket index out of range");
  if (i == 0) return Seconds{0.0};
  return Seconds{kMinSeconds *
                 std::pow(10.0, static_cast<double>(i - 1) /
                                    buckets_per_decade_)};
}

Seconds LatencyHistogram::bucket_upper(std::size_t i) const {
  HOLAP_REQUIRE(i < buckets_.size(), "bucket index out of range");
  if (i + 1 == buckets_.size()) {
    return Seconds{std::numeric_limits<double>::infinity()};
  }
  return Seconds{kMinSeconds * std::pow(10.0, static_cast<double>(i) /
                                                  buckets_per_decade_)};
}

std::size_t LatencyHistogram::bucket_index(Seconds latency) const {
  if (!(latency.value() >= kMinSeconds)) return 0;  // also catches NaN
  const double decades = std::log10(latency.value() / kMinSeconds);
  const auto i = static_cast<std::size_t>(
      1 + static_cast<long long>(decades * buckets_per_decade_));
  return std::min(i, buckets_.size() - 1);
}

void LatencyHistogram::add(Seconds latency) {
  const double v = std::max(latency.value(), 0.0);
  ++buckets_[bucket_index(Seconds{v})];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  HOLAP_REQUIRE(buckets_per_decade_ == other.buckets_per_decade_ &&
                    buckets_.size() == other.buckets_.size(),
                "histogram bucket layouts must match to merge");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Seconds LatencyHistogram::percentile(double p) const {
  HOLAP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (count_ == 0) return Seconds{0.0};
  // Rank of the requested percentile (1-based, nearest-rank with ceil).
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      // Interpolate within the covering bucket; the unbounded top bucket
      // interpolates toward the exact observed maximum.
      const double lower = bucket_lower(i).value();
      const double upper =
          std::isinf(bucket_upper(i).value()) ? max_ : bucket_upper(i).value();
      const double fraction =
          static_cast<double>(target - cumulative) /
          static_cast<double>(buckets_[i]);
      const double value = lower + fraction * (upper - lower);
      return Seconds{std::clamp(value, min_, max_)};
    }
    cumulative += buckets_[i];
  }
  return Seconds{max_};
}

}  // namespace holap
