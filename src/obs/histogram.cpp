#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace holap {

Seconds LatencyHistogram::bucket_lower(std::size_t i) {
  HOLAP_REQUIRE(i < kBucketCount, "bucket index out of range");
  if (i == 0) return 0.0;
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(i - 1) / kBucketsPerDecade);
}

Seconds LatencyHistogram::bucket_upper(std::size_t i) {
  HOLAP_REQUIRE(i < kBucketCount, "bucket index out of range");
  if (i + 1 == kBucketCount) {
    return std::numeric_limits<double>::infinity();
  }
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(i) / kBucketsPerDecade);
}

std::size_t LatencyHistogram::bucket_index(Seconds latency) {
  if (!(latency >= kMinSeconds)) return 0;  // also catches NaN
  const double decades = std::log10(latency / kMinSeconds);
  const auto i = static_cast<std::size_t>(
      1 + static_cast<long long>(decades * kBucketsPerDecade));
  return std::min(i, kBucketCount - 1);
}

void LatencyHistogram::add(Seconds latency) {
  latency = std::max(latency, 0.0);
  ++buckets_[bucket_index(latency)];
  if (count_ == 0) {
    min_ = max_ = latency;
  } else {
    min_ = std::min(min_, latency);
    max_ = std::max(max_, latency);
  }
  ++count_;
  sum_ += latency;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Seconds LatencyHistogram::percentile(double p) const {
  HOLAP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (count_ == 0) return 0.0;
  // Rank of the requested percentile (1-based, nearest-rank with ceil).
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      // Interpolate within the covering bucket; the unbounded top bucket
      // interpolates toward the exact observed maximum.
      const double lower = bucket_lower(i);
      const double upper =
          std::isinf(bucket_upper(i)) ? max_ : bucket_upper(i);
      const double fraction =
          static_cast<double>(target - cumulative) /
          static_cast<double>(buckets_[i]);
      const double value = lower + fraction * (upper - lower);
      return std::clamp(value, min_, max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

}  // namespace holap
