#include "obs/counters.hpp"

#include "common/table_printer.hpp"

namespace holap {

TablePrinter counters_table(const std::vector<PartitionCounters>& counters,
                            Seconds makespan) {
  TablePrinter t({"partition", "enqueued", "completed", "shed", "failed",
                  "retried", "failovers", "health", "max depth", "busy [s]",
                  "utilization"});
  for (const PartitionCounters& c : counters) {
    t.add_row({c.name, std::to_string(c.enqueued),
               std::to_string(c.completed), std::to_string(c.shed),
               std::to_string(c.failed), std::to_string(c.retried),
               std::to_string(c.failovers), c.health,
               std::to_string(c.max_depth),
               TablePrinter::fixed(c.busy.value(), 3),
               TablePrinter::fixed(100.0 * c.utilization(makespan), 1) +
                   "%"});
  }
  return t;
}

}  // namespace holap
