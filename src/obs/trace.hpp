// Query-lifecycle tracing (the observability layer's span model).
//
// The Figure-10 scheduler's whole premise is a feedback loop between
// *estimated* and *measured* response times (§III-G): the queue clocks are
// only as good as the estimates, and the estimates are only trustworthy if
// someone can see how far they drift. A TraceSpan pins down one lifecycle
// stage of one query — enqueue (the scheduling decision itself), translate
// (the text-to-integer partition), dispatch (kernel-launch / queue handoff),
// execute (the partition's service time) and complete (end-to-end) — with
// the partition it ran on, the scheduler's estimated absolute response time
// T_R, the measured completion and the deadline slack T_D − T_R.
//
// Timestamps come from whichever clock drives the caller: the discrete-event
// simulator records sim time (deterministic — tests assert exact span
// contents), the native planes record wall time. The recorder never reads a
// clock itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.hpp"
#include "common/units.hpp"
#include "sched/interfaces.hpp"

namespace holap {

/// Lifecycle stage a span covers, in canonical chain order.
enum class SpanKind : std::uint8_t {
  kEnqueue,    ///< scheduling decision (zero duration)
  kTranslate,  ///< text-to-integer translation partition
  kDispatch,   ///< kernel-launch stage (GPU) / queue handoff (CPU)
  kExecute,    ///< service on the chosen partition
  kComplete,   ///< end-to-end completion marker (zero duration)
};

const char* to_string(SpanKind kind);

/// One lifecycle stage of one query.
struct TraceSpan {
  std::uint64_t query_id = 0;  ///< caller-assigned (workload index)
  SpanKind kind = SpanKind::kEnqueue;
  Seconds start{};
  Seconds end{};
  QueueRef queue;  ///< partition the query was placed on
  /// Scheduler's absolute T_R at placement time (all kinds carry it).
  Seconds estimated_response{};
  /// Measured absolute completion time; only kComplete fills it.
  Seconds measured_response{};
  /// T_D − T_R at placement (kEnqueue) or T_D − completion (kComplete);
  /// positive means the deadline is (expected to be) met.
  Seconds deadline_slack{};

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

class TraceRecorder;

/// Fluent construction of one span. This is the only way code outside
/// `src/obs` creates spans — the span-lifecycle analyzer rule
/// (scripts/analyze/) flags direct `TraceSpan` construction elsewhere, so
/// every producer goes through the recorder and cannot forget the
/// sequence-stamping or shard discipline. A builder over a null recorder
/// is inert: setters work, commit() is a no-op — callers do not need a
/// null check per span.
class SpanBuilder {
 public:
  SpanBuilder& window(Seconds start, Seconds end) {
    span_.start = start;
    span_.end = end;
    return *this;
  }
  SpanBuilder& queue(QueueRef queue) {
    span_.queue = queue;
    return *this;
  }
  SpanBuilder& estimated_response(Seconds t) {
    span_.estimated_response = t;
    return *this;
  }
  SpanBuilder& measured_response(Seconds t) {
    span_.measured_response = t;
    return *this;
  }
  SpanBuilder& deadline_slack(Seconds t) {
    span_.deadline_slack = t;
    return *this;
  }
  /// Record the built span (no-op when the builder is detached).
  void commit();

 private:
  friend class TraceRecorder;
  SpanBuilder(TraceRecorder* recorder, std::uint64_t query_id, SpanKind kind)
      : recorder_(recorder) {
    span_.query_id = query_id;
    span_.kind = kind;
  }
  TraceRecorder* recorder_;
  TraceSpan span_;
};

/// Append-only span sink shared by every instrumented component.
///
/// Lock-cheap by sharding: a recording thread hashes onto one of a fixed
/// number of independently-locked buffers, so concurrent recorders (the
/// async executor's partition workers) rarely contend. A global sequence
/// number stamps every span so snapshot() can restore exact record order —
/// under the single-threaded simulator this order is fully deterministic.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Append one span (the recorder stamps its sequence number).
  void record(TraceSpan span);

  /// Start building a span bound to this recorder.
  SpanBuilder span(std::uint64_t query_id, SpanKind kind) {
    return SpanBuilder(this, query_id, kind);
  }

  /// Null-tolerant builder: `recorder` may be nullptr (span discarded at
  /// commit). Lets call sites with an optional recorder stay branch-free.
  static SpanBuilder span_into(TraceRecorder* recorder,
                               std::uint64_t query_id, SpanKind kind) {
    return SpanBuilder(recorder, query_id, kind);
  }

  /// All spans recorded so far, in record order.
  std::vector<TraceSpan> snapshot() const;

  /// Spans of one query, in record order.
  std::vector<TraceSpan> spans_for(std::uint64_t query_id) const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  void clear();

 private:
  static constexpr std::size_t kShards = 8;
  struct Stamped {
    std::uint64_t seq;
    TraceSpan span;
  };
  struct Shard {
    mutable Mutex mutex;
    std::vector<Stamped> spans HOLAP_GUARDED_BY(mutex);
  };
  std::atomic<std::uint64_t> next_seq_{0};
  std::array<Shard, kShards> shards_;
};

}  // namespace holap
