#include "obs/trace.hpp"

#include <algorithm>
#include <functional>
#include <thread>

namespace holap {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEnqueue:
      return "enqueue";
    case SpanKind::kTranslate:
      return "translate";
    case SpanKind::kDispatch:
      return "dispatch";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kComplete:
      return "complete";
  }
  return "unknown";
}

void SpanBuilder::commit() {
  if (recorder_ == nullptr) return;
  recorder_->record(span_);
}

void TraceRecorder::record(TraceSpan span) {
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[std::hash<std::thread::id>{}(
                             std::this_thread::get_id()) %
                         kShards];
  MutexLock lock(shard.mutex);
  shard.spans.push_back({seq, std::move(span)});
}

std::vector<TraceSpan> TraceRecorder::snapshot() const {
  std::vector<Stamped> merged;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    merged.insert(merged.end(), shard.spans.begin(), shard.spans.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Stamped& a, const Stamped& b) { return a.seq < b.seq; });
  std::vector<TraceSpan> out;
  out.reserve(merged.size());
  for (Stamped& s : merged) out.push_back(std::move(s.span));
  return out;
}

std::vector<TraceSpan> TraceRecorder::spans_for(
    std::uint64_t query_id) const {
  std::vector<TraceSpan> out;
  for (TraceSpan& span : snapshot()) {
    if (span.query_id == query_id) out.push_back(std::move(span));
  }
  return out;
}

std::size_t TraceRecorder::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    n += shard.spans.size();
  }
  return n;
}

void TraceRecorder::clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.spans.clear();
  }
}

}  // namespace holap
