// Fixed-layout log-spaced latency histogram.
//
// Every instrumented run wants the same three numbers — p50/p95/p99 — and
// long simulations cannot afford to keep every sample. The histogram uses
// a fixed geometric bucket layout (8 buckets per decade from 1 µs to 1000 s)
// so any two histograms are mergeable bucket-by-bucket: per-partition or
// per-shard histograms combine into a run-level one without resampling.
// Percentile estimates interpolate within the covering bucket, which bounds
// the relative error by the bucket width (10^(1/8) ≈ 1.33).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/units.hpp"

namespace holap {

class LatencyHistogram {
 public:
  /// Smallest resolvable latency; everything below lands in bucket 0.
  static constexpr double kMinSeconds = 1e-6;
  /// Bucket layout: kBucketsPerDecade geometric buckets per factor of 10.
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 9;  ///< 1e-6 s .. 1e3 s
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kBucketsPerDecade) * kDecades + 1;

  /// Record one latency (negative values are clamped to 0).
  void add(Seconds latency);

  /// Bucket-wise sum with `other` (identical fixed layouts).
  void merge(const LatencyHistogram& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  Seconds total() const { return Seconds{sum_}; }
  /// Exact mean of the recorded samples (the sum is kept exactly).
  Seconds mean() const {
    return Seconds{count_ ? sum_ / static_cast<double>(count_) : 0.0};
  }
  Seconds min() const { return Seconds{count_ ? min_ : 0.0}; }
  Seconds max() const { return Seconds{count_ ? max_ : 0.0}; }

  /// Percentile estimate, `p` in [0, 100]; 0 when empty. Monotone in `p`
  /// and clamped to the exact [min, max] of the recorded samples.
  Seconds percentile(double p) const;
  Seconds p50() const { return percentile(50.0); }
  Seconds p95() const { return percentile(95.0); }
  Seconds p99() const { return percentile(99.0); }

  /// Bucket accessors (tests and exporters).
  std::size_t bucket_count() const { return kBucketCount; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  /// Inclusive lower edge of bucket `i` (bucket 0 starts at 0).
  static Seconds bucket_lower(std::size_t i);
  /// Exclusive upper edge of bucket `i` (last bucket is unbounded).
  static Seconds bucket_upper(std::size_t i);
  /// Index of the bucket covering `latency`.
  static std::size_t bucket_index(Seconds latency);

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace holap
