// Log-spaced latency histogram with a configurable bucket layout.
//
// Every instrumented run wants the same three numbers — p50/p95/p99 — and
// long simulations cannot afford to keep every sample. The histogram uses
// a geometric bucket layout (by default 8 buckets per decade from 1 µs to
// 1000 s) so any two histograms WITH THE SAME LAYOUT are mergeable
// bucket-by-bucket: per-partition, per-device or per-shard histograms
// combine into a run-level one without resampling. Percentile estimates
// interpolate within the covering bucket, which bounds the relative error
// by the bucket width (10^(1/8) ≈ 1.33 at the default resolution).
//
// Degenerate inputs are defined, not accidental:
//   - every statistic of an EMPTY histogram is Seconds{0} — mean, min,
//     max and percentile(p) all return 0 (per-device histograms of idle
//     devices hit this constantly);
//   - merge() of two histograms with DIFFERENT bucket layouts throws
//     InvalidArgument instead of silently mixing incompatible buckets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace holap {

class LatencyHistogram {
 public:
  /// Smallest resolvable latency; everything below lands in bucket 0.
  static constexpr double kMinSeconds = 1e-6;
  /// Default layout: kBucketsPerDecade geometric buckets per factor of 10.
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 9;  ///< 1e-6 s .. 1e3 s
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kBucketsPerDecade) * kDecades + 1;

  /// The default layout is the historical fixed one (8 buckets/decade);
  /// a different `buckets_per_decade` trades resolution for footprint.
  /// Histograms merge only when their layouts match.
  explicit LatencyHistogram(int buckets_per_decade = kBucketsPerDecade);

  /// Record one latency (negative values are clamped to 0).
  void add(Seconds latency);

  /// Bucket-wise sum with `other`. Throws InvalidArgument when the two
  /// bucket layouts differ — mismatched layouts cannot be summed.
  void merge(const LatencyHistogram& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  Seconds total() const { return Seconds{sum_}; }
  /// Exact mean of the recorded samples (the sum is kept exactly);
  /// Seconds{0} when empty.
  Seconds mean() const {
    return Seconds{count_ ? sum_ / static_cast<double>(count_) : 0.0};
  }
  Seconds min() const { return Seconds{count_ ? min_ : 0.0}; }
  Seconds max() const { return Seconds{count_ ? max_ : 0.0}; }

  /// Percentile estimate, `p` in [0, 100]; Seconds{0} when empty (the
  /// documented degenerate case — an idle device's histogram has no
  /// samples to estimate from). Monotone in `p` and clamped to the exact
  /// [min, max] of the recorded samples.
  Seconds percentile(double p) const;
  Seconds p50() const { return percentile(50.0); }
  Seconds p95() const { return percentile(95.0); }
  Seconds p99() const { return percentile(99.0); }

  /// Bucket accessors (tests and exporters).
  int buckets_per_decade() const { return buckets_per_decade_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  /// Inclusive lower edge of bucket `i` (bucket 0 starts at 0).
  Seconds bucket_lower(std::size_t i) const;
  /// Exclusive upper edge of bucket `i` (last bucket is unbounded).
  Seconds bucket_upper(std::size_t i) const;
  /// Index of the bucket covering `latency`.
  std::size_t bucket_index(Seconds latency) const;

 private:
  int buckets_per_decade_ = kBucketsPerDecade;
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace holap
