// Ingestion front-end observability: what the sharded, batch-aggregated
// intake actually did.
//
// The front-end's whole claim is that aggregation amortises admission and
// translation; these counters make the claim observable per run: how many
// requests flushed alone (immediate) versus inside a real batch
// (aggregated), WHY each flush happened (capacity, timeout, close), the
// batch-size distribution, and per-shard intake gauges (accepted,
// displaced, bounced, depth high-water marks). One snapshot type, plain
// data — the front-end serialises updates behind its own mutex.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace holap {

/// Distribution of flushed batch sizes. Linear buckets 1..tracked(), with
/// one overflow bucket for larger batches — batch capacity is a small
/// config value, so linear resolution over the interesting range beats
/// the log-bucketing the latency histogram needs. Two histograms merge
/// only when their tracked ranges match (InvalidArgument otherwise);
/// mean_size() of an empty histogram is a defined 0.
class BatchSizeHistogram {
 public:
  static constexpr std::size_t kTracked = 64;

  explicit BatchSizeHistogram(std::size_t tracked = kTracked)
      : buckets_(tracked, 0) {
    HOLAP_REQUIRE(tracked >= 1,
                  "batch-size histogram needs at least one bucket");
  }

  void add(std::size_t batch_size) {
    ++total_batches_;
    total_queries_ += batch_size;
    max_size_ = std::max(max_size_, batch_size);
    if (batch_size >= 1 && batch_size <= buckets_.size()) {
      ++buckets_[batch_size - 1];
    } else if (batch_size > buckets_.size()) {
      ++overflow_;
    }
  }

  void merge(const BatchSizeHistogram& other) {
    HOLAP_REQUIRE(buckets_.size() == other.buckets_.size(),
                  "batch-size histogram tracked ranges must match to merge");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    overflow_ += other.overflow_;
    total_batches_ += other.total_batches_;
    total_queries_ += other.total_queries_;
    max_size_ = std::max(max_size_, other.max_size_);
  }

  std::size_t tracked() const { return buckets_.size(); }

  /// Batches of exactly `size` (1-based; size > tracked() is pooled).
  std::size_t count(std::size_t size) const {
    if (size >= 1 && size <= buckets_.size()) return buckets_[size - 1];
    return size > buckets_.size() ? overflow_ : 0;
  }
  std::size_t batches() const { return total_batches_; }
  std::size_t queries() const { return total_queries_; }
  std::size_t max_size() const { return max_size_; }
  /// Queries per flush (0 when nothing flushed) — the amortisation factor.
  double mean_size() const {
    return total_batches_ == 0
               ? 0.0
               : static_cast<double>(total_queries_) /
                     static_cast<double>(total_batches_);
  }

 private:
  std::vector<std::size_t> buckets_;
  std::size_t overflow_ = 0;
  std::size_t total_batches_ = 0;
  std::size_t total_queries_ = 0;
  std::size_t max_size_ = 0;
};

/// Intake gauges of one admission shard.
struct IngestShardCounters {
  std::string name;            ///< "shard0", "shard1"…
  std::size_t enqueued = 0;    ///< requests accepted into the shard queue
  std::size_t displaced = 0;   ///< queued requests evicted by an arrival
  std::size_t bounced = 0;     ///< arrivals turned away at a full shard
  std::size_t depth = 0;       ///< currently queued (gauge)
  std::size_t max_depth = 0;   ///< high-water mark of `depth`

  void on_enqueue() {
    ++enqueued;
    ++depth;
    max_depth = std::max(max_depth, depth);
  }
  void on_dequeue() {
    if (depth > 0) --depth;
  }
  void on_displaced() {
    ++displaced;
    if (depth > 0) --depth;
  }
};

/// One snapshot of the front-end's counters.
struct IngestStats {
  std::size_t submitted = 0;   ///< requests handed to submit()
  /// Requests that flushed ALONE — a batch of one buys no amortisation,
  /// so the immediate/aggregated split is the front-end's honesty gauge.
  std::size_t immediate = 0;
  std::size_t aggregated = 0;  ///< requests that flushed in a batch >= 2
  std::size_t flushes = 0;
  std::size_t flush_by_capacity = 0;  ///< batch filled to capacity
  std::size_t flush_by_timeout = 0;   ///< partial batch aged out
  std::size_t flush_on_close = 0;     ///< shutdown drained a partial batch
  BatchSizeHistogram batch_sizes;
  std::vector<IngestShardCounters> shards;
};

/// IngestStats bundled with the mutex that serialises it, the guard
/// relationship spelled out for clang Thread Safety Analysis and the
/// repo concurrency analyzer (both resolve mutex() to the same
/// capability through HOLAP_RETURN_CAPABILITY). Writers take
/// MutexLock lock(x.mutex()) and mutate through locked(); readers copy
/// a consistent snapshot().
class GuardedIngestStats {
 public:
  Mutex& mutex() const HOLAP_RETURN_CAPABILITY(mutex_) { return mutex_; }

  IngestStats& locked() HOLAP_REQUIRES(mutex_) { return stats_; }
  const IngestStats& locked() const HOLAP_REQUIRES(mutex_) {
    return stats_;
  }

  IngestStats snapshot() const HOLAP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  mutable Mutex mutex_;
  IngestStats stats_ HOLAP_GUARDED_BY(mutex_);
};

}  // namespace holap
