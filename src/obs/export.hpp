// Trace export: JSON-lines serialisation and human-readable summaries.
//
// One span per line, a flat JSON object per span — the format every trace
// tool ingests and a shell pipeline can slice (`grep '"span":"complete"'`).
// Doubles are printed with max_digits10 precision, so write → read is an
// exact round trip (the integration tests assert it). The reader accepts
// exactly what the writer emits; it is a line-oriented schema parser, not
// a general JSON parser.
//
// Schema (field order fixed):
//   {"query":N,"span":"enqueue|translate|dispatch|execute|complete",
//    "queue":"cpu|gpuK","start":S,"end":S,"est_response":S,
//    "measured_response":S,"deadline_slack":S}
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace holap {

/// Serialise one span as a single JSON line (no trailing newline).
std::string to_jsonl(const TraceSpan& span);

/// Write `spans` to `os`, one JSON object per line.
void write_jsonl(std::ostream& os, std::span<const TraceSpan> spans);

/// Parse one JSON line produced by to_jsonl. Throws InvalidArgument on a
/// malformed line.
TraceSpan span_from_jsonl(const std::string& line);

/// Read every non-empty line of `is` as a span.
std::vector<TraceSpan> read_jsonl(std::istream& is);

/// Group check: the canonical lifecycle chain of one query's spans.
/// A completed query's spans must contain, in record order, kEnqueue →
/// [kTranslate] → kDispatch → [kTranslate] → kExecute → kComplete, all
/// with the same queue and at most one kTranslate. Translation sits
/// before dispatch on the GPU path (the dedicated translation partition
/// runs first) and after it on the CPU path (inline translation happens
/// once the CPU worker picks the job up). Returns true when `spans` (one
/// query's spans, record order) form such a chain.
bool is_complete_span_chain(std::span<const TraceSpan> spans);

/// Serialise one partition's counters as a single JSON line — the
/// queue-depth/shed gauge feed next to the span stream. Schema (field
/// order fixed):
///   {"partition":"cpu","enqueued":N,"completed":N,"shed":N,"depth":N,
///    "max_depth":N,"busy":S}
std::string to_jsonl(const PartitionCounters& counters);

/// Write one gauge line per partition.
void write_counters_jsonl(std::ostream& os,
                          std::span<const PartitionCounters> counters);

/// Parse one gauge line produced by to_jsonl(PartitionCounters). Throws
/// InvalidArgument on a malformed line.
PartitionCounters counters_from_jsonl(const std::string& line);

/// Print a run summary: span counts per kind, the latency percentile
/// table and the per-partition counter table.
void print_trace_summary(std::ostream& os,
                         std::span<const TraceSpan> spans,
                         const LatencyHistogram& latencies,
                         const std::vector<PartitionCounters>& counters,
                         Seconds makespan);

}  // namespace holap
