#include "obs/export.hpp"

#include <array>
#include <charconv>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/table_printer.hpp"

namespace holap {
namespace {

// Shortest representation that round-trips exactly.
std::string format_double(double v) {
  std::array<char, 64> buf;
  const auto [ptr, ec] = std::to_chars(buf.data(),
                                       buf.data() + buf.size(), v);
  HOLAP_ASSERT(ec == std::errc{}, "double formatting failed");
  return std::string(buf.data(), ptr);
}

std::string queue_name(QueueRef ref) {
  if (ref.kind == QueueRef::kCpu) return "cpu";
  return "gpu" + std::to_string(ref.index);
}

QueueRef queue_from_name(const std::string& name) {
  if (name == "cpu") return {QueueRef::kCpu, 0};
  HOLAP_REQUIRE(name.size() > 3 && name.compare(0, 3, "gpu") == 0,
                "unknown queue name: " + name);
  return {QueueRef::kGpu, std::stoi(name.substr(3))};
}

SpanKind kind_from_name(const std::string& name) {
  for (const SpanKind k :
       {SpanKind::kEnqueue, SpanKind::kTranslate, SpanKind::kDispatch,
        SpanKind::kExecute, SpanKind::kComplete}) {
    if (name == to_string(k)) return k;
  }
  throw InvalidArgument("unknown span kind: " + name);
}

/// Value of `"key":` in `line` as raw text (up to the next ',' or '}').
std::string raw_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  HOLAP_REQUIRE(at != std::string::npos,
                "span line missing field '" + key + "': " + line);
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  bool quoted = begin < line.size() && line[begin] == '"';
  if (quoted) {
    ++begin;
    end = line.find('"', begin);
    HOLAP_REQUIRE(end != std::string::npos, "unterminated string: " + line);
  } else {
    end = line.find_first_of(",}", begin);
    HOLAP_REQUIRE(end != std::string::npos, "unterminated value: " + line);
  }
  return line.substr(begin, end - begin);
}

double double_field(const std::string& line, const std::string& key) {
  const std::string raw = raw_field(line, key);
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), v);
  HOLAP_REQUIRE(ec == std::errc{} && ptr == raw.data() + raw.size(),
                "bad number in field '" + key + "': " + raw);
  return v;
}

}  // namespace

std::string to_jsonl(const TraceSpan& span) {
  std::string out;
  out.reserve(160);
  out += "{\"query\":" + std::to_string(span.query_id);
  out += ",\"span\":\"" + std::string(to_string(span.kind)) + "\"";
  out += ",\"queue\":\"" + queue_name(span.queue) + "\"";
  out += ",\"start\":" + format_double(span.start.value());
  out += ",\"end\":" + format_double(span.end.value());
  out += ",\"est_response\":" + format_double(span.estimated_response.value());
  out += ",\"measured_response\":" + format_double(span.measured_response.value());
  out += ",\"deadline_slack\":" + format_double(span.deadline_slack.value());
  out += "}";
  return out;
}

void write_jsonl(std::ostream& os, std::span<const TraceSpan> spans) {
  for (const TraceSpan& span : spans) {
    os << to_jsonl(span) << '\n';
  }
}

TraceSpan span_from_jsonl(const std::string& line) {
  TraceSpan span;
  span.query_id = static_cast<std::uint64_t>(
      std::stoull(raw_field(line, "query")));
  span.kind = kind_from_name(raw_field(line, "span"));
  span.queue = queue_from_name(raw_field(line, "queue"));
  span.start = Seconds{double_field(line, "start")};
  span.end = Seconds{double_field(line, "end")};
  span.estimated_response =
      Seconds{double_field(line, "est_response")};
  span.measured_response =
      Seconds{double_field(line, "measured_response")};
  span.deadline_slack = Seconds{double_field(line, "deadline_slack")};
  return span;
}

std::vector<TraceSpan> read_jsonl(std::istream& is) {
  std::vector<TraceSpan> spans;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    spans.push_back(span_from_jsonl(line));
  }
  return spans;
}

bool is_complete_span_chain(std::span<const TraceSpan> spans) {
  if (spans.empty()) return false;
  // Expected kinds in order; kTranslate is optional and may sit either
  // before kDispatch (GPU path: the translation partition runs first) or
  // after it (CPU path: inline translation once the worker dequeues).
  std::size_t at = 0;
  const QueueRef queue = spans.front().queue;
  auto take = [&](SpanKind kind, bool optional) {
    if (at < spans.size() && spans[at].kind == kind &&
        spans[at].queue == queue) {
      ++at;
      return true;
    }
    return optional;
  };
  if (!take(SpanKind::kEnqueue, false)) return false;
  const bool translated_before = at < spans.size() &&
                                 spans[at].kind == SpanKind::kTranslate;
  if (!take(SpanKind::kTranslate, true)) return false;
  if (!take(SpanKind::kDispatch, false)) return false;
  if (!translated_before && !take(SpanKind::kTranslate, true)) return false;
  if (!take(SpanKind::kExecute, false)) return false;
  if (!take(SpanKind::kComplete, false)) return false;
  return at == spans.size();
}

std::string to_jsonl(const PartitionCounters& counters) {
  std::string out;
  out.reserve(128);
  out += "{\"partition\":\"" + counters.name + "\"";
  out += ",\"enqueued\":" + std::to_string(counters.enqueued);
  out += ",\"completed\":" + std::to_string(counters.completed);
  out += ",\"shed\":" + std::to_string(counters.shed);
  out += ",\"depth\":" + std::to_string(counters.depth);
  out += ",\"max_depth\":" + std::to_string(counters.max_depth);
  out += ",\"busy\":" + format_double(counters.busy.value());
  out += ",\"failed\":" + std::to_string(counters.failed);
  out += ",\"retried\":" + std::to_string(counters.retried);
  out += ",\"failovers\":" + std::to_string(counters.failovers);
  out += ",\"breaker_transitions\":" +
         std::to_string(counters.breaker_transitions);
  out += ",\"health\":\"" + counters.health + "\"";
  out += "}";
  return out;
}

void write_counters_jsonl(std::ostream& os,
                          std::span<const PartitionCounters> counters) {
  for (const PartitionCounters& c : counters) {
    os << to_jsonl(c) << '\n';
  }
}

PartitionCounters counters_from_jsonl(const std::string& line) {
  PartitionCounters c;
  c.name = raw_field(line, "partition");
  c.enqueued = static_cast<std::size_t>(
      std::stoull(raw_field(line, "enqueued")));
  c.completed = static_cast<std::size_t>(
      std::stoull(raw_field(line, "completed")));
  c.shed = static_cast<std::size_t>(std::stoull(raw_field(line, "shed")));
  c.depth = static_cast<std::size_t>(std::stoull(raw_field(line, "depth")));
  c.max_depth = static_cast<std::size_t>(
      std::stoull(raw_field(line, "max_depth")));
  c.busy = Seconds{double_field(line, "busy")};
  c.failed = static_cast<std::size_t>(std::stoull(raw_field(line, "failed")));
  c.retried =
      static_cast<std::size_t>(std::stoull(raw_field(line, "retried")));
  c.failovers =
      static_cast<std::size_t>(std::stoull(raw_field(line, "failovers")));
  c.breaker_transitions = static_cast<std::size_t>(
      std::stoull(raw_field(line, "breaker_transitions")));
  c.health = raw_field(line, "health");
  return c;
}

void print_trace_summary(std::ostream& os,
                         std::span<const TraceSpan> spans,
                         const LatencyHistogram& latencies,
                         const std::vector<PartitionCounters>& counters,
                         Seconds makespan) {
  std::array<std::size_t, 5> by_kind{};
  for (const TraceSpan& span : spans) {
    ++by_kind[static_cast<std::size_t>(span.kind)];
  }
  TablePrinter kinds({"span", "count"});
  for (const SpanKind k :
       {SpanKind::kEnqueue, SpanKind::kTranslate, SpanKind::kDispatch,
        SpanKind::kExecute, SpanKind::kComplete}) {
    kinds.add_row({to_string(k),
                   std::to_string(by_kind[static_cast<std::size_t>(k)])});
  }
  kinds.print(os, "trace spans");

  TablePrinter lat({"metric", "value [ms]"});
  lat.add_row({"count", std::to_string(latencies.count())});
  lat.add_row({"mean", TablePrinter::fixed(latencies.mean().value() * 1e3, 2)});
  lat.add_row({"p50", TablePrinter::fixed(latencies.p50().value() * 1e3, 2)});
  lat.add_row({"p95", TablePrinter::fixed(latencies.p95().value() * 1e3, 2)});
  lat.add_row({"p99", TablePrinter::fixed(latencies.p99().value() * 1e3, 2)});
  lat.add_row({"max", TablePrinter::fixed(latencies.max().value() * 1e3, 2)});
  lat.print(os, "latency");

  counters_table(counters, makespan).print(os, "partitions");
}

}  // namespace holap
