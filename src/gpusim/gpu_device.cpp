#include "gpusim/gpu_device.hpp"

#include <numeric>

namespace holap {

GpuDevice::GpuDevice(DeviceSpec spec) : spec_(std::move(spec)) {
  HOLAP_REQUIRE(spec_.sm_count >= 1, "device requires at least one SM");
  HOLAP_REQUIRE(spec_.memory_bytes > 0, "device requires memory");
  partitions_ = {spec_.sm_count};  // unpartitioned by default (eq. 15 mode)
}

void GpuDevice::upload_table(const FactTable& table,
                             const std::string& name) {
  HOLAP_REQUIRE(!name.empty(), "table name must not be empty");
  HOLAP_REQUIRE(!tables_.contains(name),
                "a table named '" + name + "' is already resident");
  const std::size_t incoming = table.size_bytes();
  const std::size_t used = memory_used();
  if (incoming > spec_.memory_bytes - used) {
    throw CapacityError("fact table (" + std::to_string(incoming) +
                        " B) exceeds free device memory (" +
                        std::to_string(spec_.memory_bytes - used) + " B)");
  }
  tables_.emplace(name, table);  // the "copy to device" — a deep host copy
}

void GpuDevice::drop_table(const std::string& name) {
  HOLAP_REQUIRE(tables_.erase(name) == 1,
                "no table named '" + name + "' is resident");
}

bool GpuDevice::has_table(const std::string& name) const {
  return tables_.contains(name);
}

const FactTable& GpuDevice::table(const std::string& name) const {
  const auto it = tables_.find(name);
  HOLAP_REQUIRE(it != tables_.end(),
                "no table named '" + name + "' is resident");
  return it->second;
}

std::vector<std::string> GpuDevice::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::size_t GpuDevice::memory_used() const {
  std::size_t used = 0;
  for (const auto& [name, table] : tables_) used += table.size_bytes();
  return used;
}

std::size_t GpuDevice::memory_free() const {
  return spec_.memory_bytes - memory_used();
}

void GpuDevice::set_partitions(std::vector<int> sm_counts) {
  HOLAP_REQUIRE(!sm_counts.empty(), "partitioning requires at least one");
  int total = 0;
  for (int n : sm_counts) {
    HOLAP_REQUIRE(n >= 1, "partition SM count must be positive");
    total += n;
  }
  HOLAP_REQUIRE(total <= spec_.sm_count,
                "partition SM counts exceed the device's SMs");
  partitions_ = std::move(sm_counts);
}

GpuPerfModel GpuDevice::partition_model(int n_sms,
                                        const std::string& table_name) const {
  const Megabytes table_mb = bytes_to_mb(table(table_name).size_bytes());
  return GpuPerfModel::paper_c2070_scaled(n_sms, table_mb);
}

GpuExecution GpuDevice::execute(int partition, const Query& q,
                                const std::string& table_name) const {
  HOLAP_REQUIRE(partition >= 0 && partition < partition_count(),
                "partition index out of range");
  const int n_sms = partitions_[static_cast<std::size_t>(partition)];
  const FactTable& facts = table(table_name);
  const ScanResult scan = gpu_scan(facts, q, n_sms);

  GpuExecution exec;
  exec.answer = scan.answer;
  exec.columns_accessed = scan.columns_accessed;
  const int total_cols = facts.schema().column_count();
  exec.column_fraction =
      static_cast<double>(scan.columns_accessed) / total_cols;
  exec.modeled_seconds =
      partition_model(n_sms, table_name).seconds(exec.column_fraction);
  return exec;
}

std::pair<DenseCube, Seconds> GpuDevice::build_cube_on_device(
    int level, CubeBasis basis, int measure,
    const std::string& table_name) const {
  // Functional build reuses the array-based builder; stripes-per-SM is the
  // same scatter. Modeled time: one full-table stream at device bandwidth
  // plus the cube's own write traffic.
  const FactTable& facts = table(table_name);
  DenseCube cube = build_cube(facts, level, basis, measure, /*threads=*/0);
  const double bytes = static_cast<double>(facts.size_bytes()) +
                       static_cast<double>(cube.size_bytes());
  const Seconds t{bytes / (spec_.bandwidth_gbps * static_cast<double>(kGiB))};
  return {std::move(cube), t};
}

}  // namespace holap
