#include "gpusim/device.hpp"

namespace holap {

DeviceSpec DeviceSpec::tesla_c2070() {
  DeviceSpec spec;
  spec.name = "Tesla C2070 (simulated)";
  spec.sm_count = 14;
  spec.memory_bytes = std::size_t{6} * kGiB;
  spec.bandwidth_gbps = 144.0;
  return spec;
}

}  // namespace holap
