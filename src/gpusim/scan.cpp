#include "gpusim/scan.hpp"

#include <algorithm>
#include <limits>

namespace holap {
namespace {

// Step-1 output: one resolved predicate per condition.
struct Predicate {
  std::span<const std::int32_t> column;
  std::int32_t from = 0, to = 0;           // range form
  std::vector<std::int32_t> codes;         // IN-list form (text condition)
  bool in_list = false;

  bool matches(std::size_t row) const {
    const std::int32_t v = column[row];
    if (!in_list) return v >= from && v <= to;
    return std::find(codes.begin(), codes.end(), v) != codes.end();
  }
};

// Per-stripe accumulator (the thread-block private state of step 2).
struct Partial {
  double sum = 0.0;
  double count = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

Partial combine(const Partial& a, const Partial& b) {
  return {a.sum + b.sum, a.count + b.count, std::min(a.min, b.min),
          std::max(a.max, b.max)};
}

}  // namespace

ScanResult gpu_scan(const FactTable& table, const Query& q, int stripes) {
  HOLAP_REQUIRE(stripes >= 1, "scan requires at least one stripe");
  HOLAP_REQUIRE(!q.needs_translation(),
                "GPU scan received an untranslated query; text parameters "
                "must pass through the translation partition first");
  validate_query(q, table.schema().dimensions(), table.schema());

  // Step 1 — preprocessing on the host: bind conditions to columns.
  std::vector<Predicate> predicates;
  predicates.reserve(q.conditions.size());
  for (const auto& c : q.conditions) {
    Predicate p;
    p.column = table.dim_level_column(c.dim, c.level);
    if (c.is_text()) {
      p.in_list = true;
      for (std::int32_t code : c.codes) {
        if (code >= 0) p.codes.push_back(code);
      }
    } else {
      p.from = c.from;
      p.to = c.to;
    }
    predicates.push_back(std::move(p));
  }
  std::vector<std::span<const double>> measures;
  measures.reserve(q.measures.size());
  for (int m : q.measures) measures.push_back(table.measure_column(m));

  // Step 2 — parallel table scan, one private partial per simulated SM.
  const std::size_t rows = table.row_count();
  const auto n_stripes = static_cast<std::size_t>(stripes);
  std::vector<Partial> partials(n_stripes);
  for (std::size_t s = 0; s < n_stripes; ++s) {
    const std::size_t begin = rows * s / n_stripes;
    const std::size_t end = rows * (s + 1) / n_stripes;
    Partial& part = partials[s];
    for (std::size_t r = begin; r < end; ++r) {
      bool match = true;
      for (const auto& p : predicates) {
        if (!p.matches(r)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      part.count += 1.0;
      for (const auto& col : measures) {
        const double v = col[r];
        part.sum += v;
        part.min = std::min(part.min, v);
        part.max = std::max(part.max, v);
      }
    }
  }

  // Step 3 — reduction across stripe partials.
  Partial total;
  for (const auto& p : partials) total = combine(total, p);

  // Step 4 — final aggregation on the host.
  ScanResult result;
  result.rows_scanned = rows;
  result.columns_accessed = q.gpu_columns_accessed();
  result.answer.row_count = total.count;
  switch (q.op) {
    case AggOp::kCount:
      result.answer.value = total.count;
      break;
    case AggOp::kSum:
      result.answer.value = total.sum;
      break;
    case AggOp::kAvg:
      result.answer.value = total.count > 0.0 ? total.sum / total.count : 0.0;
      break;
    case AggOp::kMin:
      result.answer.value = total.min;
      break;
    case AggOp::kMax:
      result.answer.value = total.max;
      break;
  }
  return result;
}

}  // namespace holap
