// Simulated GPU device specification.
//
// No physical GPU exists in this environment, so the accelerator is
// reproduced as a functional simulator (see DESIGN.md §2): the *behaviour*
// — SM partitioning, column-proportional scan cost, device-memory capacity
// limits, text-free tables — is real code driven end-to-end, while *time*
// comes from the paper's measured Tesla C2070 performance functions.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace holap {

struct DeviceSpec {
  std::string name;
  int sm_count = 0;             ///< streaming multiprocessors
  std::size_t memory_bytes = 0;  ///< global memory capacity
  double bandwidth_gbps = 0.0;   ///< peak global-memory bandwidth

  /// The paper's accelerator: Tesla C2070 — Fermi, 14 active SMs, 6 GB of
  /// global memory, up to 144 GB/s with column-based access (§III-E).
  static DeviceSpec tesla_c2070();
};

}  // namespace holap
