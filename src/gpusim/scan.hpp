// Functional GPU table-scan kernel.
//
// Implements the four-step aggregation pipeline of Lauer et al. [9] that
// the paper's GPU side uses:
//   1. preprocessing (host): resolve each condition to its fact-table
//      column and a code predicate;
//   2. parallel table scan: the row space is striped across the
//      partition's SMs, each stripe filtering and accumulating privately
//      (one thread-block-per-stripe in the real kernel);
//   3. parallel reduction: stripe partials combine pairwise;
//   4. final aggregation (host): avg division and answer assembly.
//
// The scan is *functionally real* — it reads actual columns and produces
// exact answers that tests cross-check against the CPU cube engine — while
// its simulated duration comes from GpuPerfModel (the paper's measured
// C2070 functions), not from host wall time.
#pragma once

#include "query/query.hpp"
#include "relational/fact_table.hpp"

namespace holap {

struct ScanResult {
  QueryAnswer answer;
  int columns_accessed = 0;      ///< eq. (12): conditions + measures
  std::size_t rows_scanned = 0;  ///< always the full table (columnar scan)
};

/// Scan `table` with `q`, striped across `stripes` simulated SMs.
///
/// Preconditions: `q` validated against the table's schema and fully
/// translated (the GPU holds no text; an untranslated query throws — the
/// invariant the scheduler's translation partition exists to maintain).
ScanResult gpu_scan(const FactTable& table, const Query& q, int stripes);

}  // namespace holap
