// Simulated GPU device: memory, partitions, concurrent query execution.
//
// §III-A gives the GPU two tasks: (1) building cubes from relational
// tables held in GPU memory and (2) executing queries too costly for the
// CPU. §III-E/G adds Fermi concurrent-kernel partitioning: the device's
// SMs are split into independent partitions, each processing one query at
// a time from its own queue (queues live in the scheduler; concurrency in
// time is the DES's job — this class provides per-partition *execution*
// and its modeled duration).
//
// Device memory is accounted exactly: uploading a fact table larger than
// the remaining capacity throws CapacityError, which is the constraint
// that forces text columns to be dictionary-encoded in the first place.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cube/builder.hpp"
#include "gpusim/device.hpp"
#include "gpusim/scan.hpp"
#include "perfmodel/gpu_model.hpp"

namespace holap {

/// Result of one simulated kernel execution.
struct GpuExecution {
  QueryAnswer answer;
  int columns_accessed = 0;
  double column_fraction = 0.0;   ///< C / C_TOT of eq. (13)
  Seconds modeled_seconds{};      ///< from the partition's GpuPerfModel
};

class GpuDevice {
 public:
  explicit GpuDevice(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }

  /// Copy a fact table into device memory under `name` ("facts" by
  /// default — §III-G: "all partitions have access to the entire GPU
  /// memory and to ALL fact tables"). Throws CapacityError when it does
  /// not fit alongside what is already resident, InvalidArgument on a
  /// duplicate name. Text columns are always dictionary-encoded already:
  /// FactTable stores codes only — the type system enforces the design.
  void upload_table(const FactTable& table,
                    const std::string& name = kDefaultTable);

  /// Remove a resident table, freeing its memory.
  void drop_table(const std::string& name);

  bool has_table(const std::string& name = kDefaultTable) const;
  const FactTable& table(const std::string& name = kDefaultTable) const;
  std::vector<std::string> table_names() const;
  std::size_t memory_used() const;
  std::size_t memory_free() const;

  static constexpr const char* kDefaultTable = "facts";

  /// Partition the device's SMs. Counts must be positive and sum to at
  /// most the SM count. Replaces any previous partitioning.
  /// The paper's configuration for the C2070 is {1, 1, 2, 2, 4, 4}.
  void set_partitions(std::vector<int> sm_counts);
  const std::vector<int>& partitions() const { return partitions_; }
  int partition_count() const { return static_cast<int>(partitions_.size()); }

  /// Execute `q` on partition `p` against a resident table
  /// (functionally real scan, modeled time).
  GpuExecution execute(int partition, const Query& q,
                       const std::string& table_name = kDefaultTable) const;

  /// Task (1) of §III-A: build a cube from a device-resident table.
  /// Returns the cube and the modeled build time (one full-table stream
  /// at device bandwidth).
  std::pair<DenseCube, Seconds> build_cube_on_device(
      int level, CubeBasis basis, int measure,
      const std::string& table_name = kDefaultTable) const;

  /// The performance model used for a partition of `n_sms` on a resident
  /// table (paper constants scaled to that table's size).
  GpuPerfModel partition_model(
      int n_sms, const std::string& table_name = kDefaultTable) const;

 private:
  DeviceSpec spec_;
  std::map<std::string, FactTable> tables_;
  std::vector<int> partitions_;
};

}  // namespace holap
