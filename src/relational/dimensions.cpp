#include "relational/dimensions.hpp"

namespace holap {

Dimension::Dimension(std::string name, std::vector<Level> levels)
    : name_(std::move(name)), levels_(std::move(levels)) {
  HOLAP_REQUIRE(!levels_.empty(), "dimension requires at least one level");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    HOLAP_REQUIRE(levels_[i].cardinality > 0,
                  "level cardinality must be positive");
    if (i > 0) {
      HOLAP_REQUIRE(levels_[i].cardinality > levels_[i - 1].cardinality,
                    "level cardinalities must strictly increase");
      HOLAP_REQUIRE(levels_[i].cardinality % levels_[i - 1].cardinality == 0,
                    "coarser cardinality must divide finer (balanced "
                    "hierarchy)");
    }
  }
}

const Level& Dimension::level(int i) const {
  HOLAP_REQUIRE(i >= 0 && i < level_count(), "level index out of range");
  return levels_[static_cast<std::size_t>(i)];
}

std::uint32_t Dimension::fanout(int coarse, int fine) const {
  HOLAP_REQUIRE(coarse >= 0 && fine < level_count() && coarse <= fine,
                "fanout requires 0 <= coarse <= fine < levels");
  return level(fine).cardinality / level(coarse).cardinality;
}

std::int32_t Dimension::coarsen(std::int32_t fine_code, int fine,
                                int coarse) const {
  HOLAP_REQUIRE(fine_code >= 0 &&
                    fine_code < static_cast<std::int32_t>(
                                    level(fine).cardinality),
                "member code out of range for level");
  return fine_code / static_cast<std::int32_t>(fanout(coarse, fine));
}

namespace {
std::vector<Dimension> model_dimensions(
    const std::vector<std::uint32_t>& cards) {
  auto mk = [&](const std::string& dim,
                const std::vector<std::string>& level_names) {
    std::vector<Level> levels;
    for (std::size_t i = 0; i < level_names.size(); ++i) {
      levels.push_back({level_names[i], cards[i]});
    }
    return Dimension(dim, std::move(levels));
  };
  return {
      mk("time", {"year", "month", "day", "hour"}),
      mk("geography", {"region", "state", "city", "store"}),
      mk("product", {"category", "class", "brand", "item"}),
  };
}
}  // namespace

std::vector<Dimension> paper_model_dimensions() {
  return model_dimensions({8, 40, 400, 1600});
}

std::vector<Dimension> tiny_model_dimensions() {
  return model_dimensions({2, 4, 8, 16});
}

}  // namespace holap
