// Deterministic synthetic name generation.
//
// The paper evaluates text translation on TPC-DS fact tables, whose text
// attributes are generated names (cities, streets, people). We reproduce
// that with a bijective synthesizer: `synth_name(kind, i)` returns a unique,
// human-plausible string for every index i, so a dimension column's member
// code k has the canonical string form synth_name(kind, k). This keeps the
// relational substrate free of any dictionary dependency — the dict module
// builds dictionaries from these strings, exactly as a loader would from
// raw TPC-DS text.
#pragma once

#include <cstdint>
#include <string>

namespace holap {

enum class NameKind : std::uint8_t {
  kCity,    ///< "Marlowick", "Denborough", ...
  kStreet,  ///< "14 Oak Hill Rd", ...
  kPerson,  ///< "Harlan Becker", ...
  kBrand,   ///< "Nortek #12", ...
};

/// Unique, deterministic string for index `i` of the given kind.
/// Bijective per kind: synth_name(k, i) == synth_name(k, j) iff i == j.
std::string synth_name(NameKind kind, std::uint64_t i);

}  // namespace holap
