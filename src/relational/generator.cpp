#include "relational/generator.hpp"

#include <memory>

namespace holap {

NameKind text_column_name_kind(int dim) {
  // Dimension index, not an enumeration: an if-chain with an explicit
  // fallthrough value, rather than a switch whose `default:` the
  // enum-exhaustiveness analyzer rule would flag.
  if (dim == 1) return NameKind::kCity;
  if (dim == 2) return NameKind::kBrand;
  return NameKind::kPerson;
}

FactTable generate_fact_table(const std::vector<Dimension>& dims,
                              const GeneratorConfig& config) {
  HOLAP_REQUIRE(config.measures >= 0, "measure count must be non-negative");
  std::vector<std::string> measure_names;
  for (int m = 0; m < config.measures; ++m) {
    measure_names.push_back("measure_" + std::to_string(m));
  }
  FactTable table(
      make_star_schema(dims, measure_names, config.text_levels));
  table.reserve(config.rows);

  SplitMix64 master(config.seed);
  SplitMix64 code_rng(master.fork(1));
  SplitMix64 measure_rng(master.fork(2));

  // Optional skewed popularity of finest-level members, one sampler per
  // dimension (coarser levels inherit the skew through the hierarchy).
  std::vector<std::unique_ptr<ZipfSampler>> skew;
  if (config.zipf_skew > 0.0) {
    for (const auto& dim : dims) {
      skew.push_back(std::make_unique<ZipfSampler>(
          dim.level(dim.finest_level()).cardinality, config.zipf_skew));
    }
  }

  const int dim_cols = [&] {
    int n = 0;
    for (const auto& d : dims) n += d.level_count();
    return n;
  }();
  std::vector<std::int32_t> codes(static_cast<std::size_t>(dim_cols));
  std::vector<double> measures(static_cast<std::size_t>(config.measures));

  for (std::size_t r = 0; r < config.rows; ++r) {
    std::size_t c = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const Dimension& dim = dims[d];
      const int fine = dim.finest_level();
      const auto fine_card = dim.level(fine).cardinality;
      const std::int32_t fine_code =
          skew.empty() ? static_cast<std::int32_t>(code_rng.uniform(fine_card))
                       : static_cast<std::int32_t>((*skew[d])(code_rng));
      for (int l = 0; l < dim.level_count(); ++l) {
        codes[c++] = dim.coarsen(fine_code, fine, l);
      }
    }
    for (int m = 0; m < config.measures; ++m) {
      // Pseudo-sales values: positive, long-tailed, reproducible.
      const double u = measure_rng.uniform01();
      measures[static_cast<std::size_t>(m)] =
          1.0 + 99.0 * u * u * (1.0 + static_cast<double>(m));
    }
    table.append_row(codes, measures);
  }
  return table;
}

FactTable generate_paper_model_table(std::size_t rows, std::uint64_t seed) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = seed;
  config.measures = 4;
  config.zipf_skew = 0.9;
  // Finest geography level (stores named by city-like strings) and finest
  // product level (brand strings) are text columns, as in retail schemas.
  config.text_levels = {{1, 3}, {2, 3}};
  return generate_fact_table(paper_model_dimensions(), config);
}

}  // namespace holap
