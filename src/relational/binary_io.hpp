// Compact binary persistence for fact tables.
//
// CSV (relational/csv.hpp) is the interchange path; this is the fast
// native one: a little-endian columnar container holding the schema
// (dimensions, levels, column specs) followed by raw column payloads, so a
// 50M-row table loads at disk bandwidth with no parsing. Format:
//
//   magic "HOLAPFT1" | u32 dim_count | dims... | u32 column_count |
//   columns... | u64 row_count | column payloads in schema order
//
// Strings are u32-length-prefixed UTF-8. All integers little-endian (the
// writer refuses big-endian hosts rather than silently corrupting).
// A version bump in the magic invalidates old files explicitly.
#pragma once

#include <iosfwd>
#include <string>

#include "relational/fact_table.hpp"

namespace holap {

/// Serialise `table` (schema + data) to `os`. Throws holap::Error on I/O
/// failure.
void write_fact_table(std::ostream& os, const FactTable& table);

/// Deserialise a fact table; validates the magic, the schema invariants
/// and payload sizes. Throws holap::Error on malformed input.
FactTable read_fact_table(std::istream& is);

/// Convenience file wrappers.
void save_fact_table(const std::string& path, const FactTable& table);
FactTable load_fact_table(const std::string& path);

}  // namespace holap
