// Fact-table schema.
//
// Following Figure 6 of the paper, a fact table has two kinds of columns:
//   - dimension columns, one per (dimension, level) pair, used for
//     filtration — a query condition C_L(f, t, l_K) addresses exactly one
//     such column; and
//   - data (measure) columns, used for aggregation.
// A dimension column is either natively integer-coded or *dict-encoded
// text*: its source values are strings (city names, person names, ...) that
// the dict module translates to integer codes when the database is built
// (§III-F). The GPU memory never holds the strings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/dimensions.hpp"

namespace holap {

enum class ColumnKind : std::uint8_t {
  kDimensionLevel,  ///< filtration column for one (dimension, level) pair
  kMeasure,         ///< data column aggregated by queries
};

enum class ValueEncoding : std::uint8_t {
  kInteger,          ///< values are natively integer member codes
  kDictEncodedText,  ///< values are integer codes of strings via a dictionary
};

/// Description of one fact-table column.
struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kDimensionLevel;
  ValueEncoding encoding = ValueEncoding::kInteger;
  int dim = -1;    ///< dimension index, for kDimensionLevel columns
  int level = -1;  ///< level index within the dimension
};

/// Schema of a fact table: the dimension hierarchy plus the column list.
///
/// The canonical layout (used by make_star_schema) places one column per
/// (dimension, level) pair first — in dimension-major, coarse-to-fine
/// order — followed by the measure columns, matching Figure 6.
class TableSchema {
 public:
  TableSchema(std::vector<Dimension> dims, std::vector<ColumnSpec> columns);

  const std::vector<Dimension>& dimensions() const { return dims_; }
  int dimension_count() const { return static_cast<int>(dims_.size()); }

  const std::vector<ColumnSpec>& columns() const { return columns_; }
  int column_count() const { return static_cast<int>(columns_.size()); }
  const ColumnSpec& column(int i) const;

  /// Index of the dimension column holding (dim, level); throws if absent.
  int dimension_column(int dim, int level) const;

  /// Indices of all measure columns, in schema order.
  const std::vector<int>& measure_columns() const { return measure_cols_; }

  /// Indices of all dict-encoded text columns, in schema order.
  const std::vector<int>& text_columns() const { return text_cols_; }

  /// Look up a column index by name; nullopt when absent.
  std::optional<int> find_column(const std::string& name) const;

  /// Bytes per row: 4 for each dimension column, 8 for each measure.
  std::size_t row_bytes() const;

 private:
  std::vector<Dimension> dims_;
  std::vector<ColumnSpec> columns_;
  std::vector<std::vector<int>> dim_level_to_col_;  // [dim][level] -> index
  std::vector<int> measure_cols_;
  std::vector<int> text_cols_;
};

/// Build the canonical star schema of Figure 6: one dimension column per
/// (dimension, level), then `measure_names` measure columns. Dimension
/// columns whose (dim, level) appears in `text_levels` are marked
/// dict-encoded text (their member values originate as strings).
TableSchema make_star_schema(
    std::vector<Dimension> dims, const std::vector<std::string>& measure_names,
    const std::vector<std::pair<int, int>>& text_levels = {});

}  // namespace holap
