#include "relational/binary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace holap {
namespace {

constexpr char kMagic[8] = {'H', 'O', 'L', 'A', 'P', 'F', 'T', '1'};

void require_little_endian() {
  HOLAP_REQUIRE(std::endian::native == std::endian::little,
                "binary format is little-endian only");
}

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  HOLAP_REQUIRE(static_cast<bool>(is), "unexpected end of input");
  return value;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto len = read_pod<std::uint32_t>(is);
  HOLAP_REQUIRE(len <= (1u << 20), "implausible string length");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  HOLAP_REQUIRE(static_cast<bool>(is), "unexpected end of input");
  return s;
}

}  // namespace

void write_fact_table(std::ostream& os, const FactTable& table) {
  require_little_endian();
  os.write(kMagic, sizeof(kMagic));
  const TableSchema& schema = table.schema();

  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(
                                   schema.dimension_count()));
  for (const Dimension& dim : schema.dimensions()) {
    write_string(os, dim.name());
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(
                                     dim.level_count()));
    for (int l = 0; l < dim.level_count(); ++l) {
      write_string(os, dim.level(l).name);
      write_pod<std::uint32_t>(os, dim.level(l).cardinality);
    }
  }

  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(
                                   schema.column_count()));
  for (int c = 0; c < schema.column_count(); ++c) {
    const ColumnSpec& spec = schema.column(c);
    write_string(os, spec.name);
    write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(spec.kind));
    write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(spec.encoding));
    write_pod<std::int32_t>(os, spec.dim);
    write_pod<std::int32_t>(os, spec.level);
  }

  write_pod<std::uint64_t>(os, table.row_count());
  for (int c = 0; c < schema.column_count(); ++c) {
    if (schema.column(c).kind == ColumnKind::kMeasure) {
      const auto col = table.measure_column(c);
      os.write(reinterpret_cast<const char*>(col.data()),
               static_cast<std::streamsize>(col.size() * sizeof(double)));
    } else {
      const auto col = table.dim_column(c);
      os.write(reinterpret_cast<const char*>(col.data()),
               static_cast<std::streamsize>(col.size() *
                                            sizeof(std::int32_t)));
    }
  }
  HOLAP_REQUIRE(static_cast<bool>(os), "write failed");
}

FactTable read_fact_table(std::istream& is) {
  require_little_endian();
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  HOLAP_REQUIRE(static_cast<bool>(is) &&
                    std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "not a HOLAP fact-table file (bad magic)");

  const auto dim_count = read_pod<std::uint32_t>(is);
  HOLAP_REQUIRE(dim_count >= 1 && dim_count <= 64,
                "implausible dimension count");
  std::vector<Dimension> dims;
  dims.reserve(dim_count);
  for (std::uint32_t d = 0; d < dim_count; ++d) {
    std::string name = read_string(is);
    const auto level_count = read_pod<std::uint32_t>(is);
    HOLAP_REQUIRE(level_count >= 1 && level_count <= 64,
                  "implausible level count");
    std::vector<Level> levels;
    levels.reserve(level_count);
    for (std::uint32_t l = 0; l < level_count; ++l) {
      Level level;
      level.name = read_string(is);
      level.cardinality = read_pod<std::uint32_t>(is);
      levels.push_back(std::move(level));
    }
    dims.emplace_back(std::move(name), std::move(levels));
  }

  const auto column_count = read_pod<std::uint32_t>(is);
  HOLAP_REQUIRE(column_count >= 1 && column_count <= 4096,
                "implausible column count");
  std::vector<ColumnSpec> columns;
  columns.reserve(column_count);
  for (std::uint32_t c = 0; c < column_count; ++c) {
    ColumnSpec spec;
    spec.name = read_string(is);
    const auto kind = read_pod<std::uint8_t>(is);
    const auto encoding = read_pod<std::uint8_t>(is);
    HOLAP_REQUIRE(kind <= 1 && encoding <= 1, "corrupt column spec");
    spec.kind = static_cast<ColumnKind>(kind);
    spec.encoding = static_cast<ValueEncoding>(encoding);
    spec.dim = read_pod<std::int32_t>(is);
    spec.level = read_pod<std::int32_t>(is);
    columns.push_back(std::move(spec));
  }
  // TableSchema's constructor re-validates every invariant.
  FactTable table(TableSchema(std::move(dims), std::move(columns)));

  const auto rows = read_pod<std::uint64_t>(is);
  HOLAP_REQUIRE(rows <= (std::uint64_t{1} << 33), "implausible row count");
  const TableSchema& schema = table.schema();
  for (int c = 0; c < schema.column_count(); ++c) {
    if (schema.column(c).kind == ColumnKind::kMeasure) {
      auto& col = table.mutable_measure_column(c);
      col.resize(rows);
      is.read(reinterpret_cast<char*>(col.data()),
              static_cast<std::streamsize>(rows * sizeof(double)));
    } else {
      auto& col = table.mutable_dim_column(c);
      col.resize(rows);
      is.read(reinterpret_cast<char*>(col.data()),
              static_cast<std::streamsize>(rows * sizeof(std::int32_t)));
    }
    HOLAP_REQUIRE(static_cast<bool>(is), "truncated column payload");
  }
  table.finalize_bulk_load();
  return table;
}

void save_fact_table(const std::string& path, const FactTable& table) {
  std::ofstream os(path, std::ios::binary);
  HOLAP_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  write_fact_table(os, table);
  HOLAP_REQUIRE(static_cast<bool>(os), "write failed: " + path);
}

FactTable load_fact_table(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HOLAP_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return read_fact_table(is);
}

}  // namespace holap
