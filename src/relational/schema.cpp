#include "relational/schema.hpp"

#include <algorithm>

namespace holap {

TableSchema::TableSchema(std::vector<Dimension> dims,
                         std::vector<ColumnSpec> columns)
    : dims_(std::move(dims)), columns_(std::move(columns)) {
  HOLAP_REQUIRE(!dims_.empty(), "schema requires at least one dimension");
  HOLAP_REQUIRE(!columns_.empty(), "schema requires at least one column");
  dim_level_to_col_.resize(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    dim_level_to_col_[d].assign(
        static_cast<std::size_t>(dims_[d].level_count()), -1);
  }
  for (int c = 0; c < column_count(); ++c) {
    const ColumnSpec& spec = columns_[static_cast<std::size_t>(c)];
    HOLAP_REQUIRE(!spec.name.empty(), "column name must not be empty");
    if (spec.kind == ColumnKind::kDimensionLevel) {
      HOLAP_REQUIRE(spec.dim >= 0 && spec.dim < dimension_count(),
                    "dimension column references unknown dimension");
      const Dimension& dim = dims_[static_cast<std::size_t>(spec.dim)];
      HOLAP_REQUIRE(spec.level >= 0 && spec.level < dim.level_count(),
                    "dimension column references unknown level");
      int& slot = dim_level_to_col_[static_cast<std::size_t>(
          spec.dim)][static_cast<std::size_t>(spec.level)];
      HOLAP_REQUIRE(slot == -1, "duplicate column for (dimension, level)");
      slot = c;
      if (spec.encoding == ValueEncoding::kDictEncodedText) {
        text_cols_.push_back(c);
      }
    } else {
      HOLAP_REQUIRE(spec.encoding == ValueEncoding::kInteger,
                    "measure columns cannot be dict-encoded");
      measure_cols_.push_back(c);
    }
  }
  const auto dup = [&] {
    auto names = columns_;
    std::sort(names.begin(), names.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
    return std::adjacent_find(names.begin(), names.end(),
                              [](const auto& a, const auto& b) {
                                return a.name == b.name;
                              }) != names.end();
  }();
  HOLAP_REQUIRE(!dup, "column names must be unique");
}

const ColumnSpec& TableSchema::column(int i) const {
  HOLAP_REQUIRE(i >= 0 && i < column_count(), "column index out of range");
  return columns_[static_cast<std::size_t>(i)];
}

int TableSchema::dimension_column(int dim, int level) const {
  HOLAP_REQUIRE(dim >= 0 && dim < dimension_count(),
                "dimension index out of range");
  const auto& row = dim_level_to_col_[static_cast<std::size_t>(dim)];
  HOLAP_REQUIRE(level >= 0 && level < static_cast<int>(row.size()),
                "level index out of range");
  const int col = row[static_cast<std::size_t>(level)];
  HOLAP_REQUIRE(col >= 0, "no column stored for this (dimension, level)");
  return col;
}

std::optional<int> TableSchema::find_column(const std::string& name) const {
  for (int c = 0; c < column_count(); ++c) {
    if (columns_[static_cast<std::size_t>(c)].name == name) return c;
  }
  return std::nullopt;
}

std::size_t TableSchema::row_bytes() const {
  std::size_t bytes = 0;
  for (const auto& spec : columns_) {
    bytes += spec.kind == ColumnKind::kMeasure ? 8 : 4;
  }
  return bytes;
}

TableSchema make_star_schema(
    std::vector<Dimension> dims, const std::vector<std::string>& measure_names,
    const std::vector<std::pair<int, int>>& text_levels) {
  std::vector<ColumnSpec> cols;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    for (int l = 0; l < dims[d].level_count(); ++l) {
      ColumnSpec spec;
      spec.name = dims[d].name() + "." + dims[d].level(l).name;
      spec.kind = ColumnKind::kDimensionLevel;
      spec.dim = static_cast<int>(d);
      spec.level = l;
      const bool is_text =
          std::find(text_levels.begin(), text_levels.end(),
                    std::make_pair(static_cast<int>(d), l)) !=
          text_levels.end();
      spec.encoding = is_text ? ValueEncoding::kDictEncodedText
                              : ValueEncoding::kInteger;
      cols.push_back(std::move(spec));
    }
  }
  for (const auto& m : measure_names) {
    ColumnSpec spec;
    spec.name = m;
    spec.kind = ColumnKind::kMeasure;
    cols.push_back(std::move(spec));
  }
  return TableSchema(std::move(dims), std::move(cols));
}

}  // namespace holap
