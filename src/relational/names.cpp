#include "relational/names.hpp"

#include <array>

namespace holap {
namespace {

constexpr std::array<const char*, 16> kOnsets = {
    "Mar", "Den", "Hal", "Wes", "Nor", "Bel", "Cra", "Fair",
    "Glen", "Hart", "Kings", "Lake", "Mill", "Oak", "Stone", "Win"};

constexpr std::array<const char*, 16> kMiddles = {
    "lo",  "ber", "ville", "ing", "ham", "ford", "dale", "mont",
    "wood", "field", "brook", "ridge", "haven", "port", "gate", "mere"};

constexpr std::array<const char*, 8> kCitySuffixes = {
    "wick", "borough", "ton", "by", "stead", "worth", "church", "minster"};

constexpr std::array<const char*, 12> kStreetNames = {
    "Oak Hill", "Maple",   "Cedar",   "Elm Park", "Birch",  "Juniper",
    "Willow",   "Linden",  "Chestnut", "Alder",   "Laurel", "Hawthorn"};

constexpr std::array<const char*, 6> kStreetTypes = {"Rd",  "St", "Ave",
                                                     "Ln", "Blvd", "Ct"};

constexpr std::array<const char*, 20> kFirstNames = {
    "Harlan", "Mira",  "Jonas",  "Edith",  "Caleb",  "Nora", "Felix",
    "Ada",    "Rufus", "Clara",  "Milo",   "Vera",   "Oscar", "Ivy",
    "Hugo",   "Tessa", "Alvin",  "Greta",  "Silas",  "June"};

constexpr std::array<const char*, 20> kLastNames = {
    "Becker",  "Hollis",  "Artois",   "Mendel", "Sorens", "Quimby",
    "Farrow",  "Ostler",  "Vance",    "Whitley", "Garner", "Pruitt",
    "Sable",   "Thorne",  "Underhill", "Marsh",  "Keats",  "Lovell",
    "Draper",  "Ashby"};

// Appends a base-N "digit string" disambiguator when the combinatorial name
// space is exhausted, preserving bijectivity for arbitrarily large i.
std::string with_counter(std::string base, std::uint64_t counter) {
  if (counter == 0) return base;
  base += ' ';
  base += std::to_string(counter);
  return base;
}

}  // namespace

std::string synth_name(NameKind kind, std::uint64_t i) {
  switch (kind) {
    case NameKind::kCity: {
      const std::uint64_t combos =
          kOnsets.size() * kMiddles.size() * kCitySuffixes.size();
      const std::uint64_t j = i % combos;
      std::string name = kOnsets[j % kOnsets.size()];
      name += kMiddles[(j / kOnsets.size()) % kMiddles.size()];
      name += kCitySuffixes[j / (kOnsets.size() * kMiddles.size())];
      return with_counter(std::move(name), i / combos);
    }
    case NameKind::kStreet: {
      const std::uint64_t combos = kStreetNames.size() * kStreetTypes.size();
      const std::uint64_t j = i % combos;
      // House numbers keep low indices distinct before the counter kicks in.
      std::string name = std::to_string(1 + i / combos * 7 % 9900 + j % 97);
      name += ' ';
      name += kStreetNames[j % kStreetNames.size()];
      name += ' ';
      name += kStreetTypes[j / kStreetNames.size()];
      return with_counter(std::move(name), i / (combos * 9900));
    }
    case NameKind::kPerson: {
      const std::uint64_t combos = kFirstNames.size() * kLastNames.size();
      const std::uint64_t j = i % combos;
      std::string name = kFirstNames[j % kFirstNames.size()];
      name += ' ';
      name += kLastNames[j / kFirstNames.size()];
      return with_counter(std::move(name), i / combos);
    }
    case NameKind::kBrand: {
      std::string name = kOnsets[i % kOnsets.size()];
      name += "tek #";
      name += std::to_string(i / kOnsets.size());
      return name;
    }
  }
  return "name " + std::to_string(i);  // unreachable, keeps GCC satisfied
}

}  // namespace holap
