// Synthetic TPC-DS-like fact table generator.
//
// The paper evaluates on TPC-DS fact tables (§I) with a model configuration
// of 3 dimensions × 4 levels and a ~4 GB GPU-resident table (§IV). TPC-DS
// data is not redistributable here, so this generator produces a structurally
// equivalent star-schema table: hierarchically consistent dimension codes
// (the code at a coarse level is the integer-division ancestor of the code
// at the finest level), optionally Zipf-skewed member popularity (real
// retail data is heavily skewed), and several measure columns. Text columns
// keep their integer member codes — the canonical string for code k of a
// text column is synth_name(kind, k), which the dict module uses to build
// per-column dictionaries exactly as a TPC-DS loader would.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "relational/fact_table.hpp"
#include "relational/names.hpp"

namespace holap {

/// Configuration of the synthetic generator.
struct GeneratorConfig {
  std::size_t rows = 10'000;
  std::uint64_t seed = 42;
  /// Zipf skew of finest-level member popularity per dimension;
  /// 0 = uniform. Retail-like data sits around 0.8–1.1.
  double zipf_skew = 0.0;
  /// Number of measure columns (filled with reproducible pseudo-sales data).
  int measures = 4;
  /// (dimension, level) pairs whose columns are dict-encoded text.
  std::vector<std::pair<int, int>> text_levels;
};

/// Generate a fact table over the given dimensions.
/// Dimension codes are hierarchy-consistent: for every row and dimension,
/// code(level l) == dim.coarsen(code(finest), finest, l).
FactTable generate_fact_table(const std::vector<Dimension>& dims,
                              const GeneratorConfig& config);

/// The NameKind used to materialise strings for a text column, chosen by
/// dimension index (geography→city, product→brand, others→person). Kept
/// deterministic so dictionaries are reproducible.
NameKind text_column_name_kind(int dim);

/// Paper §IV model table: 3 dims × 4 levels (paper_model_dimensions),
/// 4 measures, with the finest geography and product levels as text columns.
/// `rows` scales the table; 50M rows ≈ 4 GB matches the paper's GPU table
/// (simulation-plane experiments use the size analytically; native tests
/// pass a small row count).
FactTable generate_paper_model_table(std::size_t rows, std::uint64_t seed);

}  // namespace holap
