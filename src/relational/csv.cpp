#include "relational/csv.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "relational/generator.hpp"

namespace holap {

namespace {

// RFC-4180-style quoting for cells containing separators or quotes.
std::string quote_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += ch;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

void write_csv(std::ostream& os, const FactTable& table,
               const TextDecoder& decode) {
  // Measures must round-trip exactly through text.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  const TableSchema& schema = table.schema();
  for (int c = 0; c < schema.column_count(); ++c) {
    if (c) os << ',';
    os << quote_cell(schema.column(c).name);
  }
  os << '\n';
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    for (int c = 0; c < schema.column_count(); ++c) {
      if (c) os << ',';
      const ColumnSpec& spec = schema.column(c);
      if (spec.kind == ColumnKind::kMeasure) {
        os << table.measure_column(c)[r];
      } else if (spec.encoding == ValueEncoding::kDictEncodedText) {
        os << quote_cell(decode(c, table.dim_column(c)[r]));
      } else {
        os << table.dim_column(c)[r];
      }
    }
    os << '\n';
  }
}

FactTable read_csv(std::istream& is, const TableSchema& schema,
                   const TextEncoder& encode) {
  FactTable table(schema);
  std::string line;
  HOLAP_REQUIRE(static_cast<bool>(std::getline(is, line)),
                "CSV input is empty");
  const auto header = split_csv_line(line);
  HOLAP_REQUIRE(header.size() == static_cast<std::size_t>(
                                     schema.column_count()),
                "CSV header arity does not match schema");
  for (int c = 0; c < schema.column_count(); ++c) {
    HOLAP_REQUIRE(header[static_cast<std::size_t>(c)] == schema.column(c).name,
                  "CSV header name mismatch: " +
                      header[static_cast<std::size_t>(c)]);
  }

  std::vector<std::int32_t> codes;
  std::vector<double> measures;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    HOLAP_REQUIRE(cells.size() == header.size(), "CSV row arity mismatch");
    codes.clear();
    measures.clear();
    for (int c = 0; c < schema.column_count(); ++c) {
      const ColumnSpec& spec = schema.column(c);
      const std::string& cell = cells[static_cast<std::size_t>(c)];
      if (spec.kind == ColumnKind::kMeasure) {
        measures.push_back(std::stod(cell));
      } else if (spec.encoding == ValueEncoding::kDictEncodedText) {
        codes.push_back(encode(c, cell));
      } else {
        codes.push_back(static_cast<std::int32_t>(std::stol(cell)));
      }
    }
    table.append_row(codes, measures);
  }
  return table;
}

TextDecoder default_text_decoder(const TableSchema& schema) {
  return [&schema](int col, std::int32_t code) {
    const ColumnSpec& spec = schema.column(col);
    return synth_name(text_column_name_kind(spec.dim),
                      static_cast<std::uint64_t>(code));
  };
}

}  // namespace holap
