// CSV import/export for fact tables.
//
// Export materialises text columns back into strings (via synth_name), which
// is what a raw data feed looks like before dictionary encoding; import
// performs the reverse, using caller-provided dictionaries to translate text
// cells to integer codes — the "translation when the database is built" step
// of §III-F. Used by the examples and the dictionary_tool.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "relational/fact_table.hpp"

namespace holap {

/// Renders a text column's integer code as a string during export and is
/// consulted during import to translate a string cell back to a code.
/// Arguments: schema column index, code or cell text.
using TextEncoder = std::function<std::int32_t(int col, const std::string&)>;
using TextDecoder = std::function<std::string(int col, std::int32_t)>;

/// Write `table` as CSV with a header row. Text columns are rendered via
/// `decode` (pass the dictionary's string lookup, or synth_name-based
/// default_text_decoder for generated tables).
void write_csv(std::ostream& os, const FactTable& table,
               const TextDecoder& decode);

/// Read rows from CSV into a fresh table with the given schema. The header
/// must match the schema's column names. Text cells are translated with
/// `encode` (typically DictionarySet::encode_or_add).
FactTable read_csv(std::istream& is, const TableSchema& schema,
                   const TextEncoder& encode);

/// Decoder rendering code k of a text column as the generator's canonical
/// string (synth_name of the column's dimension).
TextDecoder default_text_decoder(const TableSchema& schema);

}  // namespace holap
