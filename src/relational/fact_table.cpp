#include "relational/fact_table.hpp"

namespace holap {

FactTable::FactTable(TableSchema schema) : schema_(std::move(schema)) {
  storage_index_.resize(static_cast<std::size_t>(schema_.column_count()));
  for (int c = 0; c < schema_.column_count(); ++c) {
    if (schema_.column(c).kind == ColumnKind::kMeasure) {
      storage_index_[static_cast<std::size_t>(c)] =
          static_cast<int>(measure_data_.size());
      measure_data_.emplace_back();
    } else {
      storage_index_[static_cast<std::size_t>(c)] =
          static_cast<int>(dim_data_.size());
      dim_data_.emplace_back();
    }
  }
}

std::size_t FactTable::size_bytes() const {
  std::size_t bytes = 0;
  for (const auto& col : dim_data_) bytes += col.size() * sizeof(std::int32_t);
  for (const auto& col : measure_data_) bytes += col.size() * sizeof(double);
  return bytes;
}

void FactTable::reserve(std::size_t rows) {
  for (auto& col : dim_data_) col.reserve(rows);
  for (auto& col : measure_data_) col.reserve(rows);
}

void FactTable::append_row(std::span<const std::int32_t> dim_codes,
                           std::span<const double> measures) {
  HOLAP_REQUIRE(dim_codes.size() == dim_data_.size(),
                "append_row: wrong number of dimension codes");
  HOLAP_REQUIRE(measures.size() == measure_data_.size(),
                "append_row: wrong number of measures");
  for (std::size_t i = 0; i < dim_data_.size(); ++i) {
    dim_data_[i].push_back(dim_codes[i]);
  }
  for (std::size_t i = 0; i < measure_data_.size(); ++i) {
    measure_data_[i].push_back(measures[i]);
  }
  ++rows_;
}

int FactTable::dim_storage(int col) const {
  const ColumnSpec& spec = schema_.column(col);
  HOLAP_REQUIRE(spec.kind == ColumnKind::kDimensionLevel,
                "column is not a dimension column");
  return storage_index_[static_cast<std::size_t>(col)];
}

int FactTable::measure_storage(int col) const {
  const ColumnSpec& spec = schema_.column(col);
  HOLAP_REQUIRE(spec.kind == ColumnKind::kMeasure,
                "column is not a measure column");
  return storage_index_[static_cast<std::size_t>(col)];
}

std::span<const std::int32_t> FactTable::dim_column(int col) const {
  return dim_data_[static_cast<std::size_t>(dim_storage(col))];
}

std::span<const double> FactTable::measure_column(int col) const {
  return measure_data_[static_cast<std::size_t>(measure_storage(col))];
}

std::vector<std::int32_t>& FactTable::mutable_dim_column(int col) {
  return dim_data_[static_cast<std::size_t>(dim_storage(col))];
}

std::vector<double>& FactTable::mutable_measure_column(int col) {
  return measure_data_[static_cast<std::size_t>(measure_storage(col))];
}

void FactTable::finalize_bulk_load() {
  std::size_t rows = dim_data_.empty()
                         ? (measure_data_.empty() ? 0 : measure_data_[0].size())
                         : dim_data_[0].size();
  for (const auto& col : dim_data_) {
    HOLAP_REQUIRE(col.size() == rows, "bulk load left ragged columns");
  }
  for (const auto& col : measure_data_) {
    HOLAP_REQUIRE(col.size() == rows, "bulk load left ragged columns");
  }
  rows_ = rows;
}

}  // namespace holap
