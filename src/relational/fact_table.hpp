// Columnar fact table.
//
// Storage follows the paper's GPU layout (§III-E, Figure 6): a column-major
// arrangement where each column is one contiguous array, dimension columns
// hold 32-bit member codes and measure columns hold 64-bit doubles. The
// same structure serves both the host-side relational substrate and the
// simulated GPU device memory (gpusim copies/owns a FactTable).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "relational/schema.hpp"

namespace holap {

/// A columnar fact table with a fixed schema.
class FactTable {
 public:
  explicit FactTable(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  std::size_t row_count() const { return rows_; }

  /// Total payload bytes across all columns (the quantity the GPU memory
  /// model accounts against device capacity).
  std::size_t size_bytes() const;

  /// Reserve storage for `rows` rows across all columns.
  void reserve(std::size_t rows);

  /// Append one row. `dim_codes` must supply a code for every dimension
  /// column in schema order; `measures` likewise for measure columns.
  void append_row(std::span<const std::int32_t> dim_codes,
                  std::span<const double> measures);

  /// Read-only view of a dimension column by schema column index.
  std::span<const std::int32_t> dim_column(int col) const;

  /// Read-only view of a measure column by schema column index.
  std::span<const double> measure_column(int col) const;

  /// Convenience: dimension column for a (dimension, level) pair.
  std::span<const std::int32_t> dim_level_column(int dim, int level) const {
    return dim_column(schema_.dimension_column(dim, level));
  }

  /// Mutable access used by builders (generator, dict encoder).
  std::vector<std::int32_t>& mutable_dim_column(int col);
  std::vector<double>& mutable_measure_column(int col);

  /// Recompute the row count from column sizes after bulk mutation;
  /// validates that all columns agree.
  void finalize_bulk_load();

 private:
  // Maps schema column index -> index into dim_data_ / measure_data_.
  TableSchema schema_;
  std::vector<int> storage_index_;
  std::vector<std::vector<std::int32_t>> dim_data_;
  std::vector<std::vector<double>> measure_data_;
  std::size_t rows_ = 0;

  int dim_storage(int col) const;
  int measure_storage(int col) const;
};

}  // namespace holap
