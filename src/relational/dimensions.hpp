// Dimension hierarchies shared by the relational substrate and the cube
// engine.
//
// A dimension has an ordered list of levels from coarsest (index 0, e.g.
// "year") to finest (last index, e.g. "hour"). The paper's §IV model uses
// 3 dimensions with 4 levels each; `paper_model_dimensions()` reproduces
// that configuration with level cardinalities (8, 40, 400, 1600) per
// dimension, which yields pre-computed cube sizes of ~4 KB, ~500 KB,
// ~512 MB and ~32.8 GB for 8-byte cells — the four cubes of §IV.
//
// Invariant: level cardinalities strictly increase and each coarser
// cardinality divides the next finer one, so a fine-level member code maps
// to its ancestor at any coarser level by integer division. This is the
// standard balanced-hierarchy model (hour→day→month→year).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace holap {

/// One hierarchy level of a dimension.
struct Level {
  std::string name;
  std::uint32_t cardinality = 0;  ///< number of distinct members at this level
};

/// A dimension with a balanced hierarchy of levels, coarsest first.
class Dimension {
 public:
  Dimension(std::string name, std::vector<Level> levels);

  const std::string& name() const { return name_; }
  int level_count() const { return static_cast<int>(levels_.size()); }
  const Level& level(int i) const;
  const std::vector<Level>& levels() const { return levels_; }

  /// Index of the finest level (highest resolution).
  int finest_level() const { return level_count() - 1; }

  /// Number of fine members per coarse member between two levels.
  /// `coarse <= fine`; fanout(l, l) == 1.
  std::uint32_t fanout(int coarse, int fine) const;

  /// Map a member code at `fine` level to its ancestor at `coarse` level.
  std::int32_t coarsen(std::int32_t fine_code, int fine, int coarse) const;

 private:
  std::string name_;
  std::vector<Level> levels_;
};

/// The 3-dimension, 4-level hierarchy used throughout the paper's §IV model.
/// Dimensions: time (year/month/day/hour-like), geography
/// (region/state/city/store-like), product (category/class/brand/item-like);
/// every dimension uses cardinalities (8, 40, 400, 1600).
std::vector<Dimension> paper_model_dimensions();

/// Smaller variant of the same shape for unit tests and native examples:
/// cardinalities (2, 4, 8, 16) per dimension.
std::vector<Dimension> tiny_model_dimensions();

}  // namespace holap
