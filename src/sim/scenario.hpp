// The paper's §IV evaluation scenario, assembled.
//
// Model configuration from §IV: the GPU holds a ~4 GB fact table with
// 3 dimensions × 4 levels; the CPU holds four pre-computed cubes of
// ~32 GB, ~500 MB, ~500 KB and ~4 KB (our hierarchy cardinalities
// 8/40/400/1600 per dimension produce exactly that ladder for 8-byte
// cells); the GPU is split into six partitions {1,1,2,2,4,4} SMs.
//
// PaperScenario wires the virtual catalogs, the published performance
// models, a scheduling policy and a deterministic workload together so
// every table/figure bench configures one object and differs only in the
// knobs the experiment sweeps.
#pragma once

#include <memory>

#include "query/workload.hpp"
#include "sched/baselines.hpp"
#include "sched/catalog.hpp"
#include "sim/simulator.hpp"

namespace holap {

struct ScenarioOptions {
  /// Pre-computed cube levels on the CPU. {0,1,2} is the Table-1 set
  /// (~4 KB/~500 KB/~512 MB); {0,1,2,3} adds the ~32 GB cube (Tables 2/3).
  std::vector<int> cube_levels = {0, 1, 2, 3};
  /// OpenMP threads of the CPU processing partition (1, 4 or 8 select the
  /// published models).
  int cpu_threads = 8;
  bool enable_cpu = true;
  bool enable_gpu = true;
  /// GPU partitioning PER DEVICE; the paper's C2070 layout by default.
  std::vector<int> gpu_partitions = {1, 1, 2, 2, 4, 4};
  /// Number of identical GPU devices. The effective queue list is
  /// `gpu_partitions` repeated per device; each device has its own
  /// serialised dispatch stage in the simulator.
  int gpu_devices = 1;
  /// Teach the SCHEDULER about the launch stage (see
  /// SchedulerConfig::modeled_gpu_dispatch). 0 keeps the paper's
  /// dispatch-blind clocks; multi-GPU experiments set it to the
  /// simulator's overhead so load actually spreads across devices.
  Seconds modeled_gpu_dispatch{};
  /// T_C, the per-query deadline.
  Seconds deadline{0.25};
  /// Virtual dictionary length = cardinality × this (see catalog.hpp).
  /// 1000 gives 1.6M-entry dictionaries for the finest text levels —
  /// TPC-DS-like cardinalities where eq. (17) predicts ~22 ms per search,
  /// the regime in which §IV's ~7% GPU-side translation cost arises.
  double dict_length_multiplier = 1000.0;
  bool feedback = true;
  bool prefer_fastest_feasible_gpu = false;
  /// Overload robustness: admission control over the scheduler's
  /// feasibility signal (kNone keeps the paper's always-place behaviour).
  AdmissionControl admission{};
  /// Partition fault tolerance: health tracking, circuit breakers and the
  /// retry policy (sched/health.hpp). Disabled keeps the paper's
  /// always-alive-partitions behaviour.
  FaultTolerance fault_tolerance{};
  /// Elastic multi-device catalog (sched/devices.hpp): device-distance
  /// transfer costs in every GPU estimate, per-queue device ownership from
  /// gpu_queue_device_map(), and — with `elastic.enabled` — online SM
  /// merge/split under sustained imbalance. Disabled keeps the scheduler
  /// bit-identical to the distance-blind behaviour.
  DeviceTopology topology{};
  ElasticPolicy elastic{};
  /// Share of text-capable conditions arriving as strings; 0 disables
  /// translation entirely (the paper's "original implementation").
  double text_probability = 0.5;
  /// Translation algorithm being modeled: the paper's per-parameter linear
  /// scan, the Aho–Corasick batch pass, or hashed lookup (future work).
  TranslationCosting translation_costing = TranslationCosting::kPerParameter;
  /// Per-level weights of the workload's condition resolutions
  /// (coarsest first). Defaults favour fine resolutions as §IV's big-cube
  /// rates imply. Must have one entry per hierarchy level.
  std::vector<double> level_weights = {0.1, 0.15, 0.25, 0.5};
  double mean_selectivity = 0.6;
  std::uint64_t workload_seed = 2012;
};

class PaperScenario {
 public:
  explicit PaperScenario(ScenarioOptions options);

  PaperScenario(const PaperScenario&) = delete;
  PaperScenario& operator=(const PaperScenario&) = delete;

  const ScenarioOptions& options() const { return options_; }
  const std::vector<Dimension>& dimensions() const { return dims_; }
  const TableSchema& schema() const { return schema_; }
  const VirtualCubeCatalog& catalog() const { return catalog_; }

  /// C_TOTAL of eq. (12): all fact-table columns.
  int gpu_total_columns() const { return schema_.column_count(); }
  /// The §IV GPU table is ~4 GB.
  Megabytes gpu_table_mb() const { return Megabytes{4096.0}; }

  /// GPU queue list across all devices (gpu_partitions x gpu_devices).
  std::vector<int> effective_gpu_partitions() const;
  /// Owning device per effective GPU queue (for SimConfig).
  std::vector<int> gpu_queue_device_map() const;

  /// Estimator over the published models for this scenario.
  CostEstimator make_estimator() const;

  /// A policy by name ("figure10", "MET", "MCT", "round-robin") wired to
  /// this scenario's estimator and SchedulerConfig.
  std::unique_ptr<SchedulerPolicy> make_policy(
      const std::string& name = "figure10") const;

  /// Deterministic workload of `n` queries matching the scenario options.
  std::vector<Query> make_workload(std::size_t n) const;

 private:
  ScenarioOptions options_;
  std::vector<Dimension> dims_;
  TableSchema schema_;
  VirtualCubeCatalog catalog_;
  VirtualTranslationModel translation_;
};

}  // namespace holap
