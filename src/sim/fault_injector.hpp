// Deterministic fault injection for overload and robustness tests.
//
// The overload paths worth testing — a partition queue filling up, one
// partition running far slower than its model, a shutdown racing a
// submission — are exactly the paths that are hard to hit on a quiet test
// machine. FaultInjector forces them on demand, deterministically: every
// knob is an explicit flag, counter or gate the test flips; nothing here
// reads a clock or a random source (this header is inside the determinism
// lint's include closure — see scripts/analyze/).
//
// Two planes consume it:
//   - the discrete-event simulator (SimConfig::fault) applies the
//     per-queue service multipliers, modelling a slow partition;
//   - AsyncHybridExecutor (set_fault_injector) consults the queue-full
//     override before every enqueue, runs the submit hook inside submit()
//     (the shutdown-race window), and parks its workers on the gate so a
//     test can pile up a backlog and release it at a chosen instant.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/units.hpp"
#include "sched/interfaces.hpp"

namespace holap {

/// A partition fault scheduled at a simulation-time instant; the
/// simulator turns these into events on its deterministic clock.
struct TimedFault {
  enum class Kind : std::uint8_t {
    kCrash,     ///< partition dies at `at`: in-flight work fails
    kSlowdown,  ///< service times on `ref` inflate by `multiplier`
    kRecover,   ///< partition comes back at `at` (clears any slowdown)
  };
  Kind kind = Kind::kCrash;
  QueueRef ref;  ///< processing partition (cpu_ref() or a kGpu queue)
  Seconds at{};
  double multiplier = 1.0;  ///< kSlowdown only
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// QueueRef conventions for the non-GPU stages (QueueRef has no
  /// translation kind; index 1 on the CPU kind names it here).
  static constexpr QueueRef cpu_ref() { return {QueueRef::kCpu, 0}; }
  static constexpr QueueRef translation_ref() { return {QueueRef::kCpu, 1}; }

  // --- queue-full ----------------------------------------------------
  /// Force every subsequent enqueue attempt to see a full queue.
  void force_queue_full(bool on) {
    MutexLock lock(mutex_);
    force_full_ = on;
  }

  /// Let the next `n` enqueue attempts through, then report full.
  void fail_pushes_after(std::uint64_t n) {
    MutexLock lock(mutex_);
    pushes_left_ = n;
    count_pushes_ = true;
  }

  /// Consulted by the executor before each enqueue; counts down the
  /// fail_pushes_after budget.
  bool queue_full() {
    MutexLock lock(mutex_);
    if (force_full_) return true;
    if (!count_pushes_) return false;
    if (pushes_left_ == 0) return true;
    --pushes_left_;
    return false;
  }

  // --- slow partition (worker gate) ----------------------------------
  /// Park every worker that reaches at_worker() until release_workers().
  void hold_workers() {
    MutexLock lock(mutex_);
    hold_ = true;
  }

  void release_workers() {
    {
      MutexLock lock(mutex_);
      hold_ = false;
    }
    gate_.notify_all();
  }

  /// Called by executor workers after dequeuing a job; blocks while held.
  void at_worker(QueueRef ref) {
    (void)ref;
    MutexLock lock(mutex_);
    ++waiting_;
    while (hold_) gate_.wait(mutex_);
    --waiting_;
  }

  /// Workers currently parked at the gate — lets a test wait until a
  /// backlog-building scenario is actually in the intended state instead
  /// of sleeping and hoping.
  int workers_waiting() const {
    MutexLock lock(mutex_);
    return waiting_;
  }

  // --- slow partition (sim plane) ------------------------------------
  /// Inflate the modeled service time of `ref` by `factor` (>= 0).
  void set_service_multiplier(QueueRef ref, double factor) {
    MutexLock lock(mutex_);
    for (auto& [queue, mult] : multipliers_) {
      if (queue == ref) {
        mult = factor;
        return;
      }
    }
    multipliers_.emplace_back(ref, factor);
  }

  double service_multiplier(QueueRef ref) const {
    MutexLock lock(mutex_);
    for (const auto& [queue, mult] : multipliers_) {
      if (queue == ref) return mult;
    }
    return 1.0;
  }

  // --- partition crash / timed faults --------------------------------
  /// Queue a timed fault for the simulator to replay on its clock. Faults
  /// fire in `at` order (ties in schedule order) before arrivals at the
  /// same instant.
  void schedule_fault(TimedFault fault) {
    MutexLock lock(mutex_);
    timed_faults_.push_back(fault);
  }

  std::vector<TimedFault> timed_faults() const {
    MutexLock lock(mutex_);
    return timed_faults_;
  }

  /// Mark `ref`'s partition down/up. The executor's workers consult this
  /// after dequeuing a job: a down partition fails the job over instead
  /// of executing it.
  void set_partition_down(QueueRef ref, bool down) {
    MutexLock lock(mutex_);
    auto it = down_.begin();
    while (it != down_.end() && !(*it == ref)) ++it;
    if (down && it == down_.end()) down_.push_back(ref);
    if (!down && it != down_.end()) down_.erase(it);
  }

  bool partition_down(QueueRef ref) const {
    MutexLock lock(mutex_);
    for (const auto& queue : down_) {
      if (queue == ref) return true;
    }
    return false;
  }

  // --- shutdown race --------------------------------------------------
  /// Runs inside AsyncHybridExecutor::submit(), after scheduling but
  /// before the enqueue — the exact window where a concurrent shutdown
  /// can close the queues under a submitter. Tests install e.g. a
  /// one-shot executor.shutdown() here to make the race a certainty.
  void set_submit_hook(std::function<void()> hook) {
    MutexLock lock(mutex_);
    submit_hook_ = std::move(hook);
  }

  void run_submit_hook() {
    std::function<void()> hook;
    {
      MutexLock lock(mutex_);
      hook = submit_hook_;
    }
    if (hook) hook();
  }

 private:
  mutable Mutex mutex_;
  CondVar gate_;
  bool force_full_ HOLAP_GUARDED_BY(mutex_) = false;
  bool count_pushes_ HOLAP_GUARDED_BY(mutex_) = false;
  std::uint64_t pushes_left_ HOLAP_GUARDED_BY(mutex_) = 0;
  bool hold_ HOLAP_GUARDED_BY(mutex_) = false;
  int waiting_ HOLAP_GUARDED_BY(mutex_) = 0;
  std::vector<std::pair<QueueRef, double>> multipliers_
      HOLAP_GUARDED_BY(mutex_);
  std::vector<TimedFault> timed_faults_ HOLAP_GUARDED_BY(mutex_);
  std::vector<QueueRef> down_ HOLAP_GUARDED_BY(mutex_);
  std::function<void()> submit_hook_ HOLAP_GUARDED_BY(mutex_);
};

}  // namespace holap
