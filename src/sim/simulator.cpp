#include "sim/simulator.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace holap {

SimResult run_simulation(SchedulerPolicy& policy,
                         std::span<const Query> queries,
                         const SimConfig& config) {
  HOLAP_REQUIRE(!queries.empty(), "simulation requires queries");
  HOLAP_REQUIRE(config.arrival_rate >= 0.0, "arrival rate must be >= 0");
  HOLAP_REQUIRE(config.arrival_rate > 0.0 || config.closed_clients >= 1,
                "closed loop requires at least one client");
  HOLAP_REQUIRE(config.service_noise >= 0.0 && config.service_noise < 1.0,
                "service noise must be in [0, 1)");
  HOLAP_REQUIRE(config.gpu_queue_bias.empty() ||
                    static_cast<int>(config.gpu_queue_bias.size()) ==
                        policy.gpu_queue_count(),
                "gpu_queue_bias must have one entry per GPU queue");

  HOLAP_REQUIRE(config.translation_workers >= 1,
                "translation partition requires at least one worker");
  std::vector<int> queue_device = config.gpu_queue_device;
  if (queue_device.empty()) {
    queue_device.assign(static_cast<std::size_t>(policy.gpu_queue_count()),
                        0);
  }
  HOLAP_REQUIRE(static_cast<int>(queue_device.size()) ==
                    policy.gpu_queue_count(),
                "gpu_queue_device must have one entry per GPU queue");
  int device_count = 0;
  for (const int d : queue_device) {
    HOLAP_REQUIRE(d >= 0, "device ids must be non-negative");
    device_count = std::max(device_count, d + 1);
  }
  device_count = std::max(device_count, 1);

  EventQueue events;
  FifoServer cpu(&events);
  MultiFifoServer translation(&events, config.translation_workers);
  std::vector<std::unique_ptr<FifoServer>> dispatchers;
  for (int d = 0; d < device_count; ++d) {
    dispatchers.push_back(std::make_unique<FifoServer>(&events));
  }
  std::vector<std::unique_ptr<FifoServer>> gpus;
  for (int i = 0; i < policy.gpu_queue_count(); ++i) {
    gpus.push_back(std::make_unique<FifoServer>(&events));
  }

  SplitMix64 noise_rng(config.seed);
  auto noise = [&]() {
    if (config.service_noise <= 0.0) return 1.0;
    return noise_rng.uniform_real(1.0 - config.service_noise,
                                  1.0 + config.service_noise);
  };
  auto fault_mult = [&](QueueRef ref) {
    return config.fault != nullptr ? config.fault->service_multiplier(ref)
                                   : 1.0;
  };

  SimResult result;
  result.gpu_utilization.assign(gpus.size(), 0.0);
  if (config.record_trace) result.trace.resize(queries.size());

  // Per-stage counters in fixed layout: cpu, translation, one dispatch
  // stage per device, one per GPU partition queue.
  result.partitions.push_back({.name = "cpu"});
  result.partitions.push_back({.name = "translation"});
  for (int d = 0; d < device_count; ++d) {
    result.partitions.push_back(
        {.name = "dispatch" + std::to_string(d)});
  }
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    result.partitions.push_back({.name = "gpu" + std::to_string(i)});
  }
  PartitionCounters& cpu_ctr = result.partitions[0];
  PartitionCounters& trans_ctr = result.partitions[1];
  auto dispatch_ctr = [&](std::size_t device) -> PartitionCounters& {
    return result.partitions[2 + device];
  };
  auto gpu_ctr = [&](std::size_t queue) -> PartitionCounters& {
    return result.partitions[2 + static_cast<std::size_t>(device_count) +
                             queue];
  };

  // The observability layer: the policy records the kEnqueue span at each
  // placement; the servers below record translate/dispatch/execute/
  // complete. Everything is stamped on the sim clock — deterministic.
  TraceRecorder* const rec = config.recorder;
  if (rec != nullptr) policy.set_trace_recorder(rec);
  auto record = [&](std::size_t idx, SpanKind kind, Seconds start,
                    Seconds end, QueueRef queue, Seconds resp_est,
                    Seconds measured, Seconds slack) {
    TraceRecorder::span_into(rec, idx, kind)
        .window(start, end)
        .queue(queue)
        .estimated_response(resp_est)
        .measured_response(measured)
        .deadline_slack(slack)
        .commit();
  };

  std::vector<double> latencies;
  latencies.reserve(queries.size());
  Seconds makespan{};
  const bool closed = config.arrival_rate <= 0.0;
  std::size_t next_query = 0;

  std::function<void(std::size_t)> start_query;

  auto finish = [&](std::size_t idx, Seconds submit, Seconds done,
                    QueueRef queue, Seconds resp_est) {
    ++result.completed;
    const Seconds latency = done - submit;
    latencies.push_back(latency.value());
    result.latency_histogram.add(latency);
    const bool met = latency <= policy.deadline();
    if (met) ++result.met_deadline;
    if (config.record_trace) {
      result.trace[idx].completed = done;
      result.trace[idx].latency = latency;
      result.trace[idx].met_deadline = met;
    }
    record(idx, SpanKind::kComplete, done, done, queue, resp_est, done,
           submit + policy.deadline() - done);
    makespan = std::max(makespan, done);
    if (closed && next_query < queries.size()) {
      const std::size_t next = next_query++;
      events.schedule(done, [&, next]() { start_query(next); });
    }
  };

  auto advance_closed = [&](Seconds at) {
    // A rejected query frees its client immediately.
    if (closed && next_query < queries.size()) {
      const std::size_t idx = next_query++;
      events.schedule(at, [&, idx]() { start_query(idx); });
    }
  };

  start_query = [&](std::size_t idx) {
    const Query& q = queries[idx];
    const Seconds now = events.now();
    const Placement p = policy.schedule(q, now, idx);
    if (config.record_trace) {
      QueryTrace& t = result.trace[idx];
      t.index = idx;
      t.submitted = now;
      t.response_est = p.response_est;
      t.slack_est = now + policy.deadline() - p.response_est;
      t.queue = p.queue;
      t.translated = p.translate;
      t.rejected = p.rejected;
      t.shed = p.shed_at_admission;
    }
    if (p.shed_at_admission) {
      // Admission control turned the query away; the client is free
      // immediately, exactly like a rejection.
      ++result.shed_at_admission;
      advance_closed(now);
      return;
    }
    if (p.rejected) {
      ++result.rejected;
      advance_closed(now);
      return;
    }
    if (p.queue.kind == QueueRef::kCpu) {
      ++result.cpu_queries;
      cpu_ctr.on_enqueue();
      // The CPU path has no launch stage; record the queue handoff as a
      // zero-duration dispatch span so every query's chain is uniform.
      record(idx, SpanKind::kDispatch, now, now, p.queue, p.response_est,
             Seconds{}, Seconds{});
      const Seconds actual =
          p.processing_est * noise() * fault_mult(FaultInjector::cpu_ref()) +
          config.cpu_overhead;
      cpu.submit(actual,
                 [&, idx, submit = now, est = p.processing_est,
                  resp_est = p.response_est, actual](Seconds done) {
                   cpu_ctr.on_complete(actual);
                   record(idx, SpanKind::kExecute, done - actual, done,
                          {QueueRef::kCpu, 0}, resp_est, Seconds{}, Seconds{});
                   policy.on_completed({QueueRef::kCpu, 0}, est, actual);
                   finish(idx, submit, done, {QueueRef::kCpu, 0},
                          resp_est);
                 });
      return;
    }
    ++result.gpu_queries;
    const int queue = p.queue.index;
    const double bias =
        config.gpu_queue_bias.empty()
            ? 1.0
            : config.gpu_queue_bias[static_cast<std::size_t>(queue)];
    const Seconds actual_gpu = p.processing_est * noise() * bias *
                               fault_mult({QueueRef::kGpu, queue});
    const auto device = static_cast<std::size_t>(
        queue_device[static_cast<std::size_t>(queue)]);
    auto into_pipeline = [&, idx, queue, device, actual_gpu, submit = now,
                          est = p.processing_est,
                          resp_est = p.response_est](Seconds) {
      dispatch_ctr(device).on_enqueue();
      dispatchers[device]->submit(
          config.gpu_dispatch_overhead,
          [&, idx, queue, device, actual_gpu, submit, est,
           resp_est](Seconds ddone) {
            dispatch_ctr(device).on_complete(config.gpu_dispatch_overhead);
            record(idx, SpanKind::kDispatch,
                   ddone - config.gpu_dispatch_overhead, ddone,
                   {QueueRef::kGpu, queue}, resp_est, Seconds{}, Seconds{});
            gpu_ctr(static_cast<std::size_t>(queue)).on_enqueue();
            gpus[static_cast<std::size_t>(queue)]->submit(
                actual_gpu,
                [&, idx, queue, actual_gpu, submit, est,
                 resp_est](Seconds done) {
                  gpu_ctr(static_cast<std::size_t>(queue))
                      .on_complete(actual_gpu);
                  record(idx, SpanKind::kExecute, done - actual_gpu, done,
                         {QueueRef::kGpu, queue}, resp_est, Seconds{}, Seconds{});
                  policy.on_completed(
                      {QueueRef::kGpu, queue}, est,
                      actual_gpu + config.gpu_dispatch_overhead);
                  finish(idx, submit, done, {QueueRef::kGpu, queue},
                         resp_est);
                });
          });
    };
    if (p.translate) {
      ++result.translated_queries;
      trans_ctr.on_enqueue();
      const Seconds trans_service =
          p.translation_est * noise() *
          fault_mult(FaultInjector::translation_ref());
      translation.submit(
          trans_service,
          [&, idx, queue, trans_service, resp_est = p.response_est,
           into_pipeline = std::move(into_pipeline)](Seconds tdone) {
            trans_ctr.on_complete(trans_service);
            record(idx, SpanKind::kTranslate, tdone - trans_service, tdone,
                   {QueueRef::kGpu, queue}, resp_est, Seconds{}, Seconds{});
            into_pipeline(tdone);
          });
    } else {
      into_pipeline(now);
    }
  };

  if (closed) {
    const auto clients = std::min<std::size_t>(
        static_cast<std::size_t>(config.closed_clients), queries.size());
    next_query = clients;
    for (std::size_t c = 0; c < clients; ++c) {
      events.schedule(Seconds{}, [&, c]() { start_query(c); });
    }
  } else {
    SplitMix64 arrivals(noise_rng.fork(17));
    Seconds t{};
    for (std::size_t i = 0; i < queries.size(); ++i) {
      t += Seconds{arrivals.exponential(config.arrival_rate)};
      events.schedule(t, [&, i]() { start_query(i); });
    }
  }

  events.run_all();
  if (rec != nullptr) policy.set_trace_recorder(nullptr);

  result.makespan = makespan;
  if (makespan > Seconds{0.0}) {
    result.throughput_qps =
        static_cast<double>(result.completed) / makespan.value();
  }
  if (result.completed > 0) {
    result.deadline_hit_rate = static_cast<double>(result.met_deadline) /
                               static_cast<double>(result.completed);
    result.mean_latency = Seconds{summarize(latencies).mean};
    result.p50_latency = Seconds{percentile(latencies, 50.0)};
    result.p95_latency = Seconds{percentile(latencies, 95.0)};
    result.p99_latency = Seconds{percentile(latencies, 99.0)};
  }
  if (makespan > Seconds{0.0}) {
    result.cpu_utilization = cpu.busy_time() / makespan;
    Seconds dispatch_busy{};
    for (const auto& d : dispatchers) dispatch_busy += d->busy_time();
    result.dispatcher_utilization =
        dispatch_busy / makespan / static_cast<double>(dispatchers.size());
    result.translation_utilization =
        translation.busy_time() / makespan / translation.workers();
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      result.gpu_utilization[i] = gpus[i]->busy_time() / makespan;
    }
  }
  return result;
}

}  // namespace holap
