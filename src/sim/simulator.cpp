#include "sim/simulator.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace holap {

namespace {

/// A query resident in a processing partition's FIFO server, tracked so a
/// partition crash can drain and fail it over.
struct InFlight {
  std::size_t idx = 0;
  Seconds submit{};  ///< original submission time (the deadline anchor)
  int attempt = 1;
  bool translated = false;  ///< text parameters already integer
  Seconds processing_est{};
};

}  // namespace

SimResult run_simulation(SchedulerPolicy& policy,
                         std::span<const Query> queries,
                         const SimConfig& config) {
  HOLAP_REQUIRE(!queries.empty(), "simulation requires queries");
  HOLAP_REQUIRE(config.arrival_rate >= 0.0, "arrival rate must be >= 0");
  HOLAP_REQUIRE(config.arrival_rate > 0.0 || config.closed_clients >= 1,
                "closed loop requires at least one client");
  HOLAP_REQUIRE(config.service_noise >= 0.0 && config.service_noise < 1.0,
                "service noise must be in [0, 1)");
  HOLAP_REQUIRE(config.gpu_queue_bias.empty() ||
                    static_cast<int>(config.gpu_queue_bias.size()) ==
                        policy.gpu_queue_count(),
                "gpu_queue_bias must have one entry per GPU queue");

  HOLAP_REQUIRE(config.translation_workers >= 1,
                "translation partition requires at least one worker");
  HOLAP_REQUIRE(config.ingest_batch >= 1,
                "ingest batch capacity must be >= 1");
  std::vector<int> queue_device = config.gpu_queue_device;
  if (queue_device.empty()) {
    queue_device.assign(static_cast<std::size_t>(policy.gpu_queue_count()),
                        0);
  }
  HOLAP_REQUIRE(static_cast<int>(queue_device.size()) ==
                    policy.gpu_queue_count(),
                "gpu_queue_device must have one entry per GPU queue");
  int device_count = 0;
  for (const int d : queue_device) {
    HOLAP_REQUIRE(d >= 0, "device ids must be non-negative");
    device_count = std::max(device_count, d + 1);
  }
  device_count = std::max(device_count, 1);

  EventQueue events;
  FifoServer cpu(&events);
  MultiFifoServer translation(&events, config.translation_workers);
  std::vector<std::unique_ptr<FifoServer>> dispatchers;
  for (int d = 0; d < device_count; ++d) {
    dispatchers.push_back(std::make_unique<FifoServer>(&events));
  }
  std::vector<std::unique_ptr<FifoServer>> gpus;
  for (int i = 0; i < policy.gpu_queue_count(); ++i) {
    gpus.push_back(std::make_unique<FifoServer>(&events));
  }

  SplitMix64 noise_rng(config.seed);
  auto noise = [&]() {
    if (config.service_noise <= 0.0) return 1.0;
    return noise_rng.uniform_real(1.0 - config.service_noise,
                                  1.0 + config.service_noise);
  };
  auto fault_mult = [&](QueueRef ref) {
    return config.fault != nullptr ? config.fault->service_multiplier(ref)
                                   : 1.0;
  };

  SimResult result;
  result.gpu_utilization.assign(gpus.size(), 0.0);
  result.device_latency.resize(static_cast<std::size_t>(device_count));
  if (config.record_trace) result.trace.resize(queries.size());

  // Per-stage counters in fixed layout: cpu, translation, one dispatch
  // stage per device, one per GPU partition queue.
  result.partitions.push_back({.name = "cpu"});
  result.partitions.push_back({.name = "translation"});
  for (int d = 0; d < device_count; ++d) {
    result.partitions.push_back(
        {.name = "dispatch" + std::to_string(d)});
  }
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    result.partitions.push_back({.name = "gpu" + std::to_string(i)});
  }
  PartitionCounters& cpu_ctr = result.partitions[0];
  PartitionCounters& trans_ctr = result.partitions[1];
  auto dispatch_ctr = [&](std::size_t device) -> PartitionCounters& {
    return result.partitions[2 + device];
  };
  auto gpu_ctr = [&](std::size_t queue) -> PartitionCounters& {
    return result.partitions[2 + static_cast<std::size_t>(device_count) +
                             queue];
  };
  auto proc_ctr = [&](QueueRef ref) -> PartitionCounters& {
    return ref.kind == QueueRef::kCpu
               ? cpu_ctr
               : gpu_ctr(static_cast<std::size_t>(ref.index));
  };

  // Fault-tolerance plumbing. Crash bookkeeping is per processing
  // partition: slot 0 = CPU, slot 1 + i = GPU queue i. `generation`
  // invalidates completion events already scheduled when a crash preempts
  // a server; `down` gates the handoff into a dead partition.
  PartitionHealthMonitor* const monitor = policy.health_monitor();
  const RetryPolicy* const retry = policy.retry_policy();
  const std::size_t slots = 1 + gpus.size();
  std::vector<std::vector<InFlight>> inflight(slots);
  std::vector<std::uint64_t> generation(slots, 0);
  std::vector<char> down(slots, 0);
  auto slot_of = [](QueueRef ref) {
    return ref.kind == QueueRef::kCpu
               ? std::size_t{0}
               : 1 + static_cast<std::size_t>(ref.index);
  };
  auto take_inflight = [&](std::size_t slot, std::size_t idx) {
    auto& v = inflight[slot];
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (it->idx == idx) {
        v.erase(it);
        return;
      }
    }
  };

  // The observability layer: the policy records the kEnqueue span at each
  // placement; the servers below record translate/dispatch/execute/
  // complete. Everything is stamped on the sim clock — deterministic.
  TraceRecorder* const rec = config.recorder;
  if (rec != nullptr) policy.set_trace_recorder(rec);
  auto record = [&](std::size_t idx, SpanKind kind, Seconds start,
                    Seconds end, QueueRef queue, Seconds resp_est,
                    Seconds measured, Seconds slack) {
    TraceRecorder::span_into(rec, idx, kind)
        .window(start, end)
        .queue(queue)
        .estimated_response(resp_est)
        .measured_response(measured)
        .deadline_slack(slack)
        .commit();
  };

  std::vector<double> latencies;
  latencies.reserve(queries.size());
  Seconds makespan{};
  const bool closed = config.arrival_rate <= 0.0;
  std::size_t next_query = 0;

  // `requeued` marks a re-submission caused by a repartition drain (NOT a
  // retry): the query keeps its attempt number and must not re-enter the
  // first-attempt counters it already counted into.
  std::function<void(std::size_t, Seconds, int, bool, bool)> run_attempt;
  // The post-decision half of run_attempt: drive one query through the
  // server pipeline given its Placement. Split out so a batched flush can
  // run N placements from ONE schedule_batch() call.
  std::function<void(std::size_t, Seconds, int, bool, bool,
                     const Placement&, Seconds)>
      execute_placement;

  // Batch-aggregated admission (SimConfig::ingest_batch > 1): arrivals
  // buffer here; a flush — by capacity or by the timeout event scheduled
  // when the buffer opens — schedules the whole buffer at once. The
  // generation guard voids a timeout event whose batch already flushed.
  struct PendingArrival {
    std::size_t idx;
    Seconds submit;
  };
  std::vector<PendingArrival> pending;
  std::uint64_t flush_generation = 0;
  std::function<void()> flush_pending;

  auto start_query = [&](std::size_t idx) {
    if (config.ingest_batch <= 1) {
      run_attempt(idx, events.now(), 1, false, false);
      return;
    }
    pending.push_back({idx, events.now()});
    if (pending.size() >= config.ingest_batch) {
      flush_pending();
      return;
    }
    if (pending.size() == 1) {
      // First arrival opens the batch; its timeout bounds everyone's wait.
      const std::uint64_t gen = flush_generation;
      events.schedule(events.now() + config.ingest_flush_timeout,
                      [&, gen]() {
                        if (gen == flush_generation) flush_pending();
                      });
    }
  };

  auto finish = [&](std::size_t idx, Seconds submit, Seconds done,
                    QueueRef queue, Seconds resp_est, int attempt) {
    ++result.completed;
    if (attempt > 1) {
      // Completed on a later attempt: a successful failover.
      ++result.failed_over;
      ++proc_ctr(queue).failovers;
      if (config.record_trace) {
        result.trace[idx].failed_over = true;
        result.trace[idx].attempts = attempt;
      }
    }
    const Seconds latency = done - submit;
    latencies.push_back(latency.value());
    result.latency_histogram.add(latency);
    if (queue.kind == QueueRef::kGpu) {
      result.device_latency[static_cast<std::size_t>(
          queue_device[static_cast<std::size_t>(queue.index)])]
          .add(latency);
    }
    const bool met = latency <= policy.deadline();
    if (met) ++result.met_deadline;
    if (config.record_trace) {
      result.trace[idx].completed = done;
      result.trace[idx].latency = latency;
      result.trace[idx].met_deadline = met;
    }
    record(idx, SpanKind::kComplete, done, done, queue, resp_est, done,
           submit + policy.deadline() - done);
    makespan = std::max(makespan, done);
    if (closed && next_query < queries.size()) {
      const std::size_t next = next_query++;
      events.schedule(done, [&, next]() { start_query(next); });
    }
  };

  auto advance_closed = [&](Seconds at) {
    // A rejected query frees its client immediately.
    if (closed && next_query < queries.size()) {
      const std::size_t idx = next_query++;
      events.schedule(at, [&, idx]() { start_query(idx); });
    }
  };

  // A query failed on `ref` at time `at` (crash drain or dead-partition
  // handoff). Roll its committed estimates back out of the partition
  // clock — exactly as a shed does — then either re-submit it under the
  // retry policy or resolve it as exhausted. Completed translation is
  // real work and stays on the translation ledger; failures only strike
  // after translation, so nothing is pending there.
  auto fail_query = [&](const InFlight& f, QueueRef ref, Seconds at) {
    ++result.partition_faults;
    if (monitor != nullptr) monitor->on_fault(ref, at);
    policy.on_shed(ref, f.processing_est, Seconds{});
    if (config.record_trace) result.trace[f.idx].attempts = f.attempt;
    auto exhaust = [&]() {
      ++result.exhausted_retries;
      if (config.record_trace) result.trace[f.idx].exhausted = true;
      advance_closed(at);
    };
    if (retry == nullptr || f.attempt >= retry->max_attempts) {
      exhaust();
      return;
    }
    // Exponential backoff, exponent clamped by the policy so a large
    // retry budget cannot grow the delay without bound.
    const Seconds backoff = retry->backoff_for(f.attempt);
    // Deadline-aware gate: shed unless the slack left after the backoff
    // is at least deadline_slack_gate * T_C.
    if (f.submit + policy.deadline() - (at + backoff) <
        policy.deadline() * retry->deadline_slack_gate) {
      exhaust();
      return;
    }
    ++result.retries;
    ++proc_ctr(ref).retried;
    events.schedule(at + backoff,
                    [&, idx = f.idx, submit = f.submit, attempt = f.attempt,
                     translated = f.translated]() {
                      run_attempt(idx, submit, attempt + 1, translated,
                                  false);
                    });
  };

  execute_placement = [&](std::size_t idx, Seconds submit, int attempt,
                          bool translated, bool requeued, const Placement& p,
                          Seconds now) {
    if (config.record_trace) {
      QueryTrace& t = result.trace[idx];
      t.index = idx;
      t.submitted = submit;
      t.attempts = attempt;
      t.response_est = p.response_est;
      t.slack_est = submit + policy.deadline() - p.response_est;
      t.queue = p.queue;
      t.translated = t.translated || p.translate;
      t.rejected = p.rejected;
      t.shed = p.shed_at_admission;
    }
    if (p.shed_at_admission) {
      // Admission control turned the query away; the client is free
      // immediately, exactly like a rejection.
      ++result.shed_at_admission;
      advance_closed(now);
      return;
    }
    if (p.rejected) {
      if (attempt > 1) {
        // A retry that finds no live candidate partition has exhausted
        // its options; keep the typed fault outcome.
        ++result.exhausted_retries;
        if (config.record_trace) result.trace[idx].exhausted = true;
      } else {
        ++result.rejected;
      }
      advance_closed(now);
      return;
    }
    if (p.queue.kind == QueueRef::kCpu) {
      if (attempt == 1 && !requeued) ++result.cpu_queries;
      if (down[0] != 0) {
        // Placed onto a dead partition (fault tolerance off, or the
        // breaker probing): fail at the handoff — the query never
        // enters the server, so `failed` bumps without depth.
        ++cpu_ctr.failed;
        fail_query({idx, submit, attempt, translated, p.processing_est},
                   {QueueRef::kCpu, 0}, now);
        return;
      }
      cpu_ctr.on_enqueue();
      // The CPU path has no launch stage; record the queue handoff as a
      // zero-duration dispatch span so every query's chain is uniform.
      record(idx, SpanKind::kDispatch, now, now, p.queue, p.response_est,
             Seconds{}, Seconds{});
      const Seconds actual =
          p.processing_est * noise() * fault_mult(FaultInjector::cpu_ref()) +
          config.cpu_overhead;
      inflight[0].push_back(
          {idx, submit, attempt, translated, p.processing_est});
      const std::uint64_t gen = generation[0];
      cpu.submit(actual,
                 [&, idx, submit, attempt, gen, est = p.processing_est,
                  resp_est = p.response_est, actual](Seconds done) {
                   if (gen != generation[0]) return;  // crashed mid-run
                   take_inflight(0, idx);
                   cpu_ctr.on_complete(actual);
                   record(idx, SpanKind::kExecute, done - actual, done,
                          {QueueRef::kCpu, 0}, resp_est, Seconds{}, Seconds{});
                   policy.on_completed({QueueRef::kCpu, 0}, est, actual);
                   finish(idx, submit, done, {QueueRef::kCpu, 0}, resp_est,
                          attempt);
                 });
      return;
    }
    if (attempt == 1 && !requeued) ++result.gpu_queries;
    const int queue = p.queue.index;
    const double bias =
        config.gpu_queue_bias.empty()
            ? 1.0
            : config.gpu_queue_bias[static_cast<std::size_t>(queue)];
    const Seconds actual_gpu = p.processing_est * noise() * bias *
                               fault_mult({QueueRef::kGpu, queue});
    const auto device = static_cast<std::size_t>(
        queue_device[static_cast<std::size_t>(queue)]);
    auto into_pipeline = [&, idx, submit, attempt, queue, device, actual_gpu,
                          est = p.processing_est, resp_est = p.response_est,
                          translated_after =
                              translated || p.translate](Seconds) {
      dispatch_ctr(device).on_enqueue();
      dispatchers[device]->submit(
          config.gpu_dispatch_overhead,
          [&, idx, submit, attempt, queue, device, actual_gpu, est, resp_est,
           translated_after](Seconds ddone) {
            dispatch_ctr(device).on_complete(config.gpu_dispatch_overhead);
            record(idx, SpanKind::kDispatch,
                   ddone - config.gpu_dispatch_overhead, ddone,
                   {QueueRef::kGpu, queue}, resp_est, Seconds{}, Seconds{});
            const std::size_t slot = 1 + static_cast<std::size_t>(queue);
            if (down[slot] != 0) {
              // The partition died while the query crossed translation/
              // dispatch: fail at the handoff. Its translation survives —
              // the retry re-schedules with translation_cached.
              ++gpu_ctr(static_cast<std::size_t>(queue)).failed;
              fail_query({idx, submit, attempt, translated_after, est},
                         {QueueRef::kGpu, queue}, ddone);
              return;
            }
            gpu_ctr(static_cast<std::size_t>(queue)).on_enqueue();
            inflight[slot].push_back(
                {idx, submit, attempt, translated_after, est});
            const std::uint64_t gen = generation[slot];
            gpus[static_cast<std::size_t>(queue)]->submit(
                actual_gpu,
                [&, idx, submit, attempt, queue, slot, gen, actual_gpu, est,
                 resp_est](Seconds done) {
                  if (gen != generation[slot]) return;  // crashed mid-run
                  take_inflight(slot, idx);
                  gpu_ctr(static_cast<std::size_t>(queue))
                      .on_complete(actual_gpu);
                  record(idx, SpanKind::kExecute, done - actual_gpu, done,
                         {QueueRef::kGpu, queue}, resp_est, Seconds{},
                         Seconds{});
                  policy.on_completed(
                      {QueueRef::kGpu, queue}, est,
                      actual_gpu + config.gpu_dispatch_overhead);
                  finish(idx, submit, done, {QueueRef::kGpu, queue},
                         resp_est, attempt);
                });
          });
    };
    if (p.translate) {
      ++result.translated_queries;
      trans_ctr.on_enqueue();
      const Seconds trans_service =
          p.translation_est * noise() *
          fault_mult(FaultInjector::translation_ref());
      translation.submit(
          trans_service,
          [&, idx, queue, trans_service, resp_est = p.response_est,
           into_pipeline = std::move(into_pipeline)](Seconds tdone) {
            trans_ctr.on_complete(trans_service);
            record(idx, SpanKind::kTranslate, tdone - trans_service, tdone,
                   {QueueRef::kGpu, queue}, resp_est, Seconds{}, Seconds{});
            into_pipeline(tdone);
          });
    } else {
      into_pipeline(now);
    }
  };

  run_attempt = [&](std::size_t idx, Seconds submit, int attempt,
                    bool translated, bool requeued) {
    const Seconds now = events.now();
    ScheduleHints hints;
    hints.translation_cached = translated;
    const Placement p = policy.schedule(queries[idx], now, idx, hints);
    execute_placement(idx, submit, attempt, translated, requeued, p, now);
  };

  flush_pending = [&]() {
    if (pending.empty()) return;
    ++flush_generation;  // voids this batch's pending timeout event
    std::vector<PendingArrival> batch = std::move(pending);
    pending.clear();
    std::vector<Query> batch_queries;
    batch_queries.reserve(batch.size());
    for (const PendingArrival& a : batch) {
      batch_queries.push_back(queries[a.idx]);
    }
    // One decision pass, one ledger commit for the whole flush —
    // decision-equivalent to scheduling the buffer serially in order.
    // Trace/span ids are exact when the flush is contiguous in arrival
    // order (always true for open-loop arrivals).
    const Seconds now = events.now();
    const BatchPlacement placed =
        policy.schedule_batch(batch_queries, now, batch.front().idx);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      execute_placement(batch[i].idx, batch[i].submit, 1, false, false,
                        placed.placements[i], now);
    }
  };

  // Elastic repartitioning. One merge/split: drain BOTH affected queues
  // (keeper and donor) through the policy's on_shed() rollback — exactly
  // the crash-drain discipline, minus the fault — apply the operation to
  // the catalog/estimator, then re-schedule every drained query against
  // the new widths with its attempt number and translation state intact.
  // Every drained query still resolves exactly once; no retry budget is
  // consumed and no clock second is lost or double-counted.
  std::vector<std::size_t> device_merges;
  std::vector<std::size_t> device_splits;
  std::vector<std::size_t> device_drained;
  device_merges.assign(static_cast<std::size_t>(device_count), 0);
  device_splits.assign(static_cast<std::size_t>(device_count), 0);
  device_drained.assign(static_cast<std::size_t>(device_count), 0);
  auto do_repartition = [&](const RepartitionDecision& decision) {
    const Seconds now = events.now();
    struct Drained {
      InFlight f;
      int queue;
    };
    std::vector<Drained> drained;
    for (const int q : {decision.keeper, decision.donor}) {
      HOLAP_REQUIRE(q >= 0 && q < static_cast<int>(gpus.size()),
                    "repartition names an unknown GPU queue");
      const std::size_t slot = 1 + static_cast<std::size_t>(q);
      // Stale completion events become no-ops; preempting the server
      // returns the unserved span to the busy-time ledger.
      ++generation[slot];
      gpus[static_cast<std::size_t>(q)]->preempt(now);
      std::vector<InFlight> lost = std::move(inflight[slot]);
      inflight[slot].clear();
      for (InFlight& f : lost) {
        gpu_ctr(static_cast<std::size_t>(q)).on_drained();
        // Roll the placement's committed estimate back out of the queue
        // clock (translation already ran — it stays on its ledger).
        policy.on_shed({QueueRef::kGpu, q}, f.processing_est, Seconds{});
        drained.push_back({f, q});
      }
    }
    const RepartitionDecision applied = policy.apply_repartition(decision);
    const auto dev = static_cast<std::size_t>(applied.device);
    HOLAP_REQUIRE(dev < device_merges.size(),
                  "repartition names an unknown device");
    if (applied.kind == RepartitionDecision::Kind::kMerge) {
      ++result.repartition_merges;
      ++device_merges[dev];
    } else {
      ++result.repartition_splits;
      ++device_splits[dev];
    }
    result.repartition_drained += drained.size();
    device_drained[dev] += drained.size();
    for (const Drained& d : drained) {
      // Same attempt (this is not a retry), translation preserved via the
      // translation_cached hint, requeued so first-attempt counters do not
      // double-count.
      run_attempt(d.f.idx, d.f.submit, d.f.attempt, d.f.translated, true);
    }
  };

  // Timed faults fire on the sim clock, scheduled ahead of the arrivals so
  // a fault at an arrival's instant takes effect first.
  if (config.fault != nullptr) {
    for (const TimedFault& f : config.fault->timed_faults()) {
      HOLAP_REQUIRE(f.at >= Seconds{0.0}, "fault time must be >= 0");
      const bool proc_ref =
          (f.ref.kind == QueueRef::kCpu && f.ref.index == 0) ||
          (f.ref.kind == QueueRef::kGpu && f.ref.index >= 0 &&
           f.ref.index < static_cast<int>(gpus.size()));
      switch (f.kind) {
        case TimedFault::Kind::kCrash:
          HOLAP_REQUIRE(proc_ref,
                        "crash faults name a processing partition");
          events.schedule(f.at, [&, f]() {
            const std::size_t slot = slot_of(f.ref);
            if (down[slot] != 0) return;  // already down
            down[slot] = 1;
            config.fault->set_partition_down(f.ref, true);
            if (monitor != nullptr) monitor->on_crash(f.ref, events.now());
            // Stale completion events still fire; bumping the generation
            // makes them no-ops, and preempting the server returns the
            // unserved span to the busy-time ledger.
            ++generation[slot];
            if (f.ref.kind == QueueRef::kCpu) {
              cpu.preempt(events.now());
            } else {
              gpus[static_cast<std::size_t>(f.ref.index)]->preempt(
                  events.now());
            }
            std::vector<InFlight> drained = std::move(inflight[slot]);
            inflight[slot].clear();
            for (const InFlight& lost : drained) {
              proc_ctr(f.ref).on_failed();
              fail_query(lost, f.ref, events.now());
            }
          });
          break;
        case TimedFault::Kind::kSlowdown:
          HOLAP_REQUIRE(f.multiplier >= 0.0,
                        "slowdown multiplier must be >= 0");
          events.schedule(f.at, [&, f]() {
            config.fault->set_service_multiplier(f.ref, f.multiplier);
          });
          break;
        case TimedFault::Kind::kRecover:
          HOLAP_REQUIRE(proc_ref,
                        "recovery faults name a processing partition");
          events.schedule(f.at, [&, f]() {
            down[slot_of(f.ref)] = 0;
            config.fault->set_partition_down(f.ref, false);
            config.fault->set_service_multiplier(f.ref, 1.0);
            if (monitor != nullptr) {
              monitor->on_recovered(f.ref, events.now());
            }
          });
          break;
      }
    }
  }

  // Forced repartitions fire on the sim clock, like timed faults.
  if (!config.timed_repartitions.empty()) {
    HOLAP_REQUIRE(policy.device_catalog() != nullptr,
                  "timed repartitions require a policy with a device "
                  "catalog (SchedulerConfig::topology.enabled)");
    for (const TimedRepartition& r : config.timed_repartitions) {
      HOLAP_REQUIRE(r.at >= Seconds{0.0}, "repartition time must be >= 0");
      events.schedule(r.at, [&, r]() { do_repartition(r.decision); });
    }
  }

  // The elastic trigger: evaluate the policy's backlog/health signals on a
  // fixed sim-clock cadence. The tick re-arms itself only while queries
  // remain unresolved, so an otherwise-finished run terminates.
  std::function<void()> elastic_tick;
  const ElasticPolicy* const elastic = policy.elastic_policy();
  if (elastic != nullptr) {
    elastic_tick = [&]() {
      const auto decision = policy.evaluate_repartition(events.now());
      if (decision.has_value()) do_repartition(*decision);
      const std::size_t resolved = result.completed + result.rejected +
                                   result.shed_at_admission +
                                   result.exhausted_retries;
      if (resolved < queries.size()) {
        events.schedule(events.now() + elastic->check_interval,
                        [&]() { elastic_tick(); });
      }
    };
    events.schedule(elastic->check_interval, [&]() { elastic_tick(); });
  }

  if (closed) {
    const auto clients = std::min<std::size_t>(
        static_cast<std::size_t>(config.closed_clients), queries.size());
    next_query = clients;
    for (std::size_t c = 0; c < clients; ++c) {
      events.schedule(Seconds{}, [&, c]() { start_query(c); });
    }
  } else {
    SplitMix64 arrivals(noise_rng.fork(17));
    Seconds t{};
    for (std::size_t i = 0; i < queries.size(); ++i) {
      t += Seconds{arrivals.exponential(config.arrival_rate)};
      events.schedule(t, [&, i]() { start_query(i); });
    }
  }

  events.run_all();
  if (rec != nullptr) policy.set_trace_recorder(nullptr);

  // Publish the per-partition health gauges the monitor ended the run in.
  if (monitor != nullptr) {
    cpu_ctr.health = to_string(monitor->health({QueueRef::kCpu, 0}));
    cpu_ctr.breaker_transitions =
        monitor->breaker_transitions({QueueRef::kCpu, 0});
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const QueueRef ref{QueueRef::kGpu, static_cast<int>(i)};
      gpu_ctr(i).health = to_string(monitor->health(ref));
      gpu_ctr(i).breaker_transitions = monitor->breaker_transitions(ref);
    }
  }

  // Per-device gauges, when the policy models a catalog: the partition
  // layout the run ended in plus what repartitioning did per device.
  if (const DeviceCatalog* catalog = policy.device_catalog();
      catalog != nullptr) {
    result.devices.resize(static_cast<std::size_t>(catalog->device_count()));
    for (int d = 0; d < catalog->device_count(); ++d) {
      DeviceGauges& g = result.devices[static_cast<std::size_t>(d)];
      g.name = "device" + std::to_string(d);
      g.active_queues = catalog->active_queues_on(d);
      for (const int q : catalog->queues_on(d)) g.total_sms += catalog->width(q);
      if (static_cast<std::size_t>(d) < device_merges.size()) {
        g.merges = device_merges[static_cast<std::size_t>(d)];
        g.splits = device_splits[static_cast<std::size_t>(d)];
        g.drained = device_drained[static_cast<std::size_t>(d)];
      }
    }
  }

  result.makespan = makespan;
  if (makespan > Seconds{0.0}) {
    result.throughput_qps =
        static_cast<double>(result.completed) / makespan.value();
  }
  if (result.completed > 0) {
    result.deadline_hit_rate = static_cast<double>(result.met_deadline) /
                               static_cast<double>(result.completed);
    result.mean_latency = Seconds{summarize(latencies).mean};
    result.p50_latency = Seconds{percentile(latencies, 50.0)};
    result.p95_latency = Seconds{percentile(latencies, 95.0)};
    result.p99_latency = Seconds{percentile(latencies, 99.0)};
  }
  if (makespan > Seconds{0.0}) {
    result.cpu_utilization = cpu.busy_time() / makespan;
    Seconds dispatch_busy{};
    for (const auto& d : dispatchers) dispatch_busy += d->busy_time();
    result.dispatcher_utilization =
        dispatch_busy / makespan / static_cast<double>(dispatchers.size());
    result.translation_utilization =
        translation.busy_time() / makespan / translation.workers();
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      result.gpu_utilization[i] = gpus[i]->busy_time() / makespan;
    }
  }
  return result;
}

}  // namespace holap
