// Discrete-event core: a deterministic time-ordered event queue.
//
// Events at equal timestamps fire in submission order (a monotone sequence
// number breaks ties), so a simulation run is exactly reproducible — tests
// assert on precise event orderings and every experiment is replayable
// from its seed.
#pragma once

#include <functional>
#include <queue>

#include "common/error.hpp"
#include "common/units.hpp"

namespace holap {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `t` (must not be in the past).
  void schedule(Seconds t, Action action) {
    HOLAP_REQUIRE(t >= now_, "cannot schedule an event in the past");
    events_.push(Event{t, seq_++, std::move(action)});
  }

  Seconds now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

  /// Pop and run the earliest event; advances now(). Returns false when
  /// the queue is empty.
  bool run_next() {
    if (events_.empty()) return false;
    // priority_queue::top is const; the action must be moved out before
    // pop, so copy the handle via const_cast-free extraction.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.action();
    return true;
  }

  /// Run until no events remain.
  void run_all() {
    while (run_next()) {
    }
  }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  Seconds now_{};
  std::uint64_t seq_ = 0;
};

/// A single FIFO server in the event queue's time. Service times are known
/// at submission, so the queue collapses to busy-until clock arithmetic.
class FifoServer {
 public:
  explicit FifoServer(EventQueue* events) : events_(events) {
    HOLAP_REQUIRE(events != nullptr, "server requires an event queue");
  }

  /// Enqueue a job taking `service` seconds; `on_done(t)` fires at its
  /// completion time t. Jobs run in submission order.
  void submit(Seconds service, std::function<void(Seconds)> on_done) {
    HOLAP_REQUIRE(service >= Seconds{0.0},
                  "service time must be non-negative");
    const Seconds start = std::max(free_at_, events_->now());
    free_at_ = start + service;
    busy_ += service;
    ++jobs_;
    const Seconds done = free_at_;
    events_->schedule(done,
                      [cb = std::move(on_done), done]() { cb(done); });
  }

  /// Partition crash at `now`: discard all queued/in-service work. The
  /// server is continuously busy through free_at_, so the unserved span
  /// (free_at_ − now) comes straight off the busy-time ledger. Completion
  /// events already in the event queue still fire; the caller invalidates
  /// them (the simulator's per-partition generation counters).
  void preempt(Seconds now) {
    if (free_at_ > now) {
      busy_ -= free_at_ - now;
      free_at_ = now;
    }
  }

  Seconds free_at() const { return free_at_; }
  Seconds busy_time() const { return busy_; }
  std::size_t jobs() const { return jobs_; }

 private:
  EventQueue* events_;
  Seconds free_at_{};
  Seconds busy_{};
  std::size_t jobs_ = 0;
};

/// A pool of k identical servers fed by one FIFO queue: each arriving job
/// starts on the earliest-free server. Models a parallelised stage — e.g.
/// a multi-threaded translation partition (the paper's future work) —
/// while keeping the deterministic clock-arithmetic formulation.
class MultiFifoServer {
 public:
  MultiFifoServer(EventQueue* events, int workers) : events_(events) {
    HOLAP_REQUIRE(events != nullptr, "server requires an event queue");
    HOLAP_REQUIRE(workers >= 1, "server pool requires at least one worker");
    free_at_.assign(static_cast<std::size_t>(workers), Seconds{});
  }

  void submit(Seconds service, std::function<void(Seconds)> on_done) {
    HOLAP_REQUIRE(service >= Seconds{0.0},
                  "service time must be non-negative");
    // FIFO: the job at the queue head takes the earliest-free worker.
    auto earliest = free_at_.begin();
    for (auto it = free_at_.begin() + 1; it != free_at_.end(); ++it) {
      if (*it < *earliest) earliest = it;
    }
    const Seconds start = std::max(*earliest, events_->now());
    *earliest = start + service;
    busy_ += service;
    ++jobs_;
    const Seconds done = *earliest;
    events_->schedule(done,
                      [cb = std::move(on_done), done]() { cb(done); });
  }

  int workers() const { return static_cast<int>(free_at_.size()); }
  Seconds busy_time() const { return busy_; }
  std::size_t jobs() const { return jobs_; }

 private:
  EventQueue* events_;
  std::vector<Seconds> free_at_;
  Seconds busy_{};
  std::size_t jobs_ = 0;
};

}  // namespace holap
