#include "sim/scenario.hpp"

#include "relational/generator.hpp"

namespace holap {
namespace {

TableSchema make_paper_schema() {
  // Mirrors generate_paper_model_table's schema: 3 dims × 4 levels, four
  // measures, finest geography and product levels dict-encoded.
  return make_star_schema(paper_model_dimensions(),
                          {"measure_0", "measure_1", "measure_2",
                           "measure_3"},
                          {{1, 3}, {2, 3}});
}

}  // namespace

PaperScenario::PaperScenario(ScenarioOptions options)
    : options_(std::move(options)),
      dims_(paper_model_dimensions()),
      schema_(make_paper_schema()),
      catalog_(dims_, options_.cube_levels),
      translation_(schema_, options_.dict_length_multiplier) {}

std::vector<int> PaperScenario::effective_gpu_partitions() const {
  HOLAP_REQUIRE(options_.gpu_devices >= 1, "need at least one GPU device");
  std::vector<int> queues;
  for (int d = 0; d < options_.gpu_devices; ++d) {
    queues.insert(queues.end(), options_.gpu_partitions.begin(),
                  options_.gpu_partitions.end());
  }
  return queues;
}

std::vector<int> PaperScenario::gpu_queue_device_map() const {
  std::vector<int> map;
  for (int d = 0; d < options_.gpu_devices; ++d) {
    map.insert(map.end(), options_.gpu_partitions.size(), d);
  }
  return map;
}

CostEstimator PaperScenario::make_estimator() const {
  CostEstimator estimator = make_paper_estimator(
      effective_gpu_partitions(), options_.cpu_threads, gpu_table_mb(),
      gpu_total_columns(), &catalog_, &translation_);
  estimator.set_translation_costing(options_.translation_costing);
  return estimator;
}

std::unique_ptr<SchedulerPolicy> PaperScenario::make_policy(
    const std::string& name) const {
  SchedulerConfig config;
  config.gpu_partitions = effective_gpu_partitions();
  config.deadline = options_.deadline;
  config.enable_cpu = options_.enable_cpu;
  config.enable_gpu = options_.enable_gpu;
  config.feedback = options_.feedback;
  config.prefer_fastest_feasible_gpu = options_.prefer_fastest_feasible_gpu;
  config.modeled_gpu_dispatch = options_.modeled_gpu_dispatch;
  config.gpu_queue_device = gpu_queue_device_map();
  config.admission = options_.admission;
  config.fault_tolerance = options_.fault_tolerance;
  config.topology = options_.topology;
  config.topology.gpu_table_mb = gpu_table_mb();
  config.elastic = options_.elastic;
  return ::holap::make_policy(name, std::move(config), make_estimator());
}

std::vector<Query> PaperScenario::make_workload(std::size_t n) const {
  WorkloadConfig wl;
  wl.seed = options_.workload_seed;
  wl.text_probability = options_.text_probability;
  wl.mean_selectivity = options_.mean_selectivity;
  wl.level_weights = options_.level_weights;
  QueryGenerator gen(dims_, schema_, wl);
  return gen.batch(n);
}

}  // namespace holap
