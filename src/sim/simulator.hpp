// Whole-system discrete-event simulation (§IV's "system model").
//
// The paper evaluates its scheduler on a model of the testbed configured
// with measured performance characteristics. This simulator is that model:
// partition queues become FIFO servers in simulated time, a query's
// *actual* service time is its model estimate times an optional noise
// factor, and two explicitly documented overheads calibrate the model to
// the published throughputs (see SimConfig).
//
// Query flow:
//   arrival → SchedulerPolicy::schedule() →
//     CPU queue: [CPU server: T_CPU + cpu_overhead]
//     GPU queue i: [translation server: T_TRANS]? →
//                  [dispatcher: gpu_dispatch_overhead] →
//                  [partition-i server: T_GPUj]
//
// The dispatcher is a single serial stage all GPU-bound queries cross —
// Fermi's concurrent-kernel execution still serialises kernel launches and
// parameter copies through one driver/hardware queue, which is what caps
// the paper's GPU-only rate near 69 Q/s even though the six partition
// models alone would sum to several hundred Q/s. Completion feedback
// (measured vs estimated time) flows back into the policy's queue clocks.
#pragma once

#include <memory>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "query/query.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_injector.hpp"

namespace holap {

struct SimConfig {
  /// > 0: open-loop Poisson arrivals at this rate (queries/second).
  /// 0: closed loop — `closed_clients` clients, each submitting its next
  /// query the moment its previous one completes (saturation throughput,
  /// which is what the paper's "processing rate" tables report).
  double arrival_rate = 0.0;
  int closed_clients = 16;
  /// Fixed per-query CPU-side cost outside the cube scan itself (query
  /// parsing, result assembly, scheduler bookkeeping). Calibrated at 5 ms:
  /// reconciles eq. (7)/(10) with Table 1's published 12/87/110 Q/s.
  Seconds cpu_overhead{0.005};
  /// Serialised kernel-launch + parameter-copy cost per GPU query.
  /// Calibrated at 14 ms: reproduces the published GPU-only ~69 Q/s cap.
  Seconds gpu_dispatch_overhead{0.014};
  /// Threads of the translation partition. 1 is the paper's design; more
  /// workers model a parallelised translation stage (future work).
  int translation_workers = 1;
  /// Device owning each GPU partition queue (multi-GPU systems): each
  /// device has its own serialised dispatch stage. Empty = one device owns
  /// every queue (the paper's single C2070). Size must otherwise match the
  /// policy's GPU queue count; device ids must be dense from 0.
  std::vector<int> gpu_queue_device;
  /// Multiplicative service-time noise: actual = estimate * U[1-x, 1+x].
  /// 0 disables (actuals equal estimates exactly).
  double service_noise = 0.0;
  /// Per-GPU-queue systematic bias: actual = estimate * bias[queue].
  /// Models a miscalibrated performance function for one partition class —
  /// the error mode the §III-G feedback loop exists to absorb. Empty = no
  /// bias; otherwise must have one entry per GPU queue.
  std::vector<double> gpu_queue_bias;
  /// Batch-aggregated admission on the sim clock, mirroring the native
  /// ingestion front-end: arrivals buffer until `ingest_batch` of them
  /// are pending, or until the FIRST buffered arrival has waited
  /// `ingest_flush_timeout`; each flush runs ONE schedule_batch() over
  /// the whole buffer. 1 = the serial paper behaviour (every arrival
  /// schedules immediately). Retries always schedule serially — a
  /// failover is latency-critical and never waits for co-batched peers.
  /// Flush events fire on the sim clock, so runs stay deterministic.
  std::size_t ingest_batch = 1;
  Seconds ingest_flush_timeout{0.002};
  /// Record a per-query trace in SimResult::trace (costs memory; off by
  /// default).
  bool record_trace = false;
  /// Span sink for the observability layer: when set, the run records one
  /// span per lifecycle stage per query (enqueue/translate/dispatch/
  /// execute/complete), timestamped on the *sim* clock — fully
  /// deterministic for a given (queries, config). Caller owns the
  /// recorder; the policy's recorder is overridden for the run.
  TraceRecorder* recorder = nullptr;
  /// Deterministic fault injection: per-queue service multipliers inflate
  /// the modeled service times (FaultInjector::translation_ref() names the
  /// translation stage), and the injector's timed faults replay partition
  /// crashes, slowdowns and recoveries on the sim clock. Caller owns the
  /// injector; nullptr = no faults.
  FaultInjector* fault = nullptr;
  /// Forced repartitions on the sim clock (FaultInjector-style), bypassing
  /// the elastic trigger — how tests pin a merge/split to the middle of a
  /// burst. Requires the policy to expose a device catalog. Queued work on
  /// the two affected partitions is drained through the policy's on_shed()
  /// rollback and re-scheduled against the new widths; nothing is lost or
  /// double-counted.
  std::vector<TimedRepartition> timed_repartitions;
  std::uint64_t seed = 99;
};

/// Per-query record (only when SimConfig::record_trace).
struct QueryTrace {
  std::size_t index = 0;       ///< position in the input workload
  Seconds submitted{};
  Seconds completed{};     ///< 0 when rejected
  Seconds response_est{};  ///< the scheduler's T_R at placement time
  Seconds slack_est{};     ///< T_D − T_R at placement time
  Seconds latency{};       ///< completed − submitted (0 when rejected)
  QueueRef queue;
  bool translated = false;
  bool rejected = false;
  bool shed = false;  ///< turned away by admission control
  bool met_deadline = false;
  int attempts = 1;          ///< placements tried (1 = no faults seen)
  bool failed_over = false;  ///< completed on a later attempt
  bool exhausted = false;    ///< gave up: retry budget or deadline slack
};

struct SimResult {
  std::size_t completed = 0;
  std::size_t rejected = 0;
  /// Queries turned away by admission control (AdmissionControl::kReject).
  std::size_t shed_at_admission = 0;
  // Fault-tolerance outcomes. Every query resolves to exactly one of
  // {completed, rejected, shed_at_admission, exhausted_retries}; a
  // completed query that needed more than one attempt also counts in
  // failed_over.
  std::size_t failed_over = 0;        ///< completed on attempt > 1
  std::size_t exhausted_retries = 0;  ///< failed with no retry budget left
  std::size_t retries = 0;            ///< re-submissions performed
  std::size_t partition_faults = 0;   ///< per-query fault events observed
  std::size_t met_deadline = 0;
  std::size_t cpu_queries = 0;
  std::size_t gpu_queries = 0;
  std::size_t translated_queries = 0;
  Seconds makespan{};               ///< last completion time
  double throughput_qps = 0.0;      ///< completed / makespan
  double deadline_hit_rate = 0.0;   ///< met_deadline / completed
  Seconds mean_latency{};
  Seconds p50_latency{};
  Seconds p95_latency{};
  Seconds p99_latency{};
  double cpu_utilization = 0.0;     ///< CPU server busy fraction
  double dispatcher_utilization = 0.0;
  double translation_utilization = 0.0;
  std::vector<double> gpu_utilization;  ///< per partition queue
  std::vector<QueryTrace> trace;        ///< per query, when recorded
  /// Mergeable latency distribution of completed queries.
  LatencyHistogram latency_histogram;
  /// Per-stage counters in fixed order: cpu, translation, dispatch per
  /// device, then one per GPU partition queue.
  std::vector<PartitionCounters> partitions;
  // Elastic repartitioning outcomes (all zero while no catalog is
  // configured):
  std::size_t repartition_merges = 0;  ///< merge operations applied
  std::size_t repartition_splits = 0;  ///< split operations applied
  /// Queries drained from a repartitioned queue and re-placed; each still
  /// resolves exactly once (completed/rejected/shed/exhausted).
  std::size_t repartition_drained = 0;
  /// Per-device end-of-run gauges, one per GPU device when the policy
  /// models a device catalog; empty otherwise.
  std::vector<DeviceGauges> devices;
  /// Mergeable latency distribution per GPU device (queries completing on
  /// one of the device's partition queues).
  std::vector<LatencyHistogram> device_latency;
};

/// Run `queries` through `policy` under `config`. The policy's queue
/// layout must match the estimator it was built with. Deterministic for a
/// given (queries, config) pair.
SimResult run_simulation(SchedulerPolicy& policy,
                         std::span<const Query> queries,
                         const SimConfig& config);

}  // namespace holap
