#include "dict/dictionary.hpp"

#include "common/error.hpp"

namespace holap {

std::int32_t Dictionary::encode_or_add(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) return it->second;
  const auto code = static_cast<std::int32_t>(by_code_.size());
  by_code_.emplace_back(s);
  index_.emplace(std::string_view(by_code_.back()), code);
  return code;
}

std::optional<std::int32_t> Dictionary::find(std::string_view s,
                                             DictSearch strategy) const {
  if (strategy == DictSearch::kHashed) {
    if (auto it = index_.find(s); it != index_.end()) return it->second;
    return std::nullopt;
  }
  std::int32_t code = 0;
  for (const auto& entry : by_code_) {
    if (entry == s) return code;
    ++code;
  }
  return std::nullopt;
}

const std::string& Dictionary::decode(std::int32_t code) const {
  HOLAP_REQUIRE(code >= 0 && static_cast<std::size_t>(code) < by_code_.size(),
                "dictionary code out of range");
  return by_code_[static_cast<std::size_t>(code)];
}

std::size_t Dictionary::memory_bytes() const {
  std::size_t bytes = by_code_.size() * sizeof(std::string);
  for (const auto& s : by_code_) bytes += s.capacity();
  bytes += index_.size() *
           (sizeof(std::string_view) + sizeof(std::int32_t) + sizeof(void*));
  return bytes;
}

}  // namespace holap
