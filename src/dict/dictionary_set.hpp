// Per-column dictionary set (§III-F).
//
// The paper deliberately keeps "a smaller dictionary for each text column in
// the table rather than having one large dictionary for all text columns",
// because the translation-time estimate P_DICT(D_L) is per-dictionary and
// smaller dictionaries have smaller search-time variance. DictionarySet is
// that design: a dictionary per text column, built when the database is
// loaded. (bench_ablation_dictionaries quantifies the claim against a
// single shared dictionary.)
#pragma once

#include <map>

#include "dict/dictionary.hpp"
#include "relational/fact_table.hpp"

namespace holap {

class DictionarySet {
 public:
  DictionarySet() = default;

  /// Build dictionaries for every text column of `table`. Codes already
  /// stored in the table are covered in code order, so dictionary code k
  /// decodes to the canonical string of member k (synth_name of the
  /// column's dimension) and encode(decode(k)) == k.
  static DictionarySet build_from_table(const FactTable& table);

  /// Dictionary for a schema column index; throws if the column has none.
  const Dictionary& for_column(int col) const;
  Dictionary& for_column(int col);

  bool has_column(int col) const { return dicts_.contains(col); }
  std::size_t column_count() const { return dicts_.size(); }

  /// Create (or fetch) the dictionary for a text column; used by loaders.
  Dictionary& create_column(int col) { return dicts_[col]; }

  /// Total memory across all dictionaries.
  std::size_t memory_bytes() const;

  /// Schema column indices that have dictionaries, ascending.
  std::vector<int> columns() const;

 private:
  std::map<int, Dictionary> dicts_;
};

}  // namespace holap
