// Aho–Corasick multi-pattern matcher (§II-E, ref. [22]).
//
// The paper's related work singles out Aho–Corasick as the classic machine
// for finding "occurrences of large numbers of keywords in text strings";
// its future work promises a "more sophisticated translation algorithm".
// This automaton is that algorithm's engine: build it once over a query's
// string parameters, then stream the dictionary through it ONCE — every
// parameter is resolved in a single pass, so a query's translation cost is
// P_DICT(D_L) per distinct column instead of per parameter (see
// BatchTranslator in query/batch_translator.hpp).
//
// The matcher is general-purpose: match() reports every occurrence of any
// pattern inside a text, and match_exact() the patterns equal to a text —
// the case translation needs.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace holap {

class AhoCorasick {
 public:
  /// Build the goto/fail automaton over `patterns`. Duplicate patterns
  /// share a match slot (both indices are reported). Empty patterns are
  /// rejected.
  explicit AhoCorasick(const std::vector<std::string_view>& patterns);

  std::size_t pattern_count() const { return pattern_lengths_.size(); }
  std::size_t node_count() const { return nodes_.size(); }

  /// Occurrence of pattern `pattern` ending at text position `end`
  /// (exclusive, i.e. text[end - len, end) == pattern).
  struct Occurrence {
    std::size_t pattern = 0;
    std::size_t end = 0;
  };

  /// All occurrences of all patterns in `text`, in end-position order.
  std::vector<Occurrence> match(std::string_view text) const;

  /// Stream interface: invoke `on_match(pattern, end)` per occurrence.
  void scan(std::string_view text,
            const std::function<void(std::size_t, std::size_t)>& on_match)
      const;

  /// Indices of the patterns exactly equal to `text` (whole-string match).
  /// One automaton walk of |text| steps, regardless of pattern count —
  /// the primitive batch translation is built on.
  std::vector<std::size_t> match_exact(std::string_view text) const;

  /// Allocation-free variant for tight loops (dictionary streaming):
  /// clears `out` and fills it with the exact-match pattern indices.
  void match_exact(std::string_view text, std::vector<std::size_t>& out)
      const;

 private:
  struct Node {
    // Dense first level would waste memory for few patterns; a sorted
    // edge list keeps the automaton compact and cache-friendly.
    std::vector<std::pair<unsigned char, std::int32_t>> edges;
    std::int32_t fail = 0;
    std::int32_t output_head = -1;  // chain into outputs_
  };

  std::int32_t child(std::int32_t node, unsigned char c) const;
  std::int32_t step(std::int32_t node, unsigned char c) const;

  std::vector<Node> nodes_;
  // outputs_: (pattern index, next-in-chain) — patterns ending at a node,
  // including via fail links.
  std::vector<std::pair<std::size_t, std::int32_t>> outputs_;
  std::vector<std::size_t> pattern_lengths_;
  // Node reached by spelling each full pattern (for match_exact).
  std::vector<std::int32_t> terminal_node_;
};

}  // namespace holap
