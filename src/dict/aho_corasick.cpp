#include "dict/aho_corasick.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace holap {

std::int32_t AhoCorasick::child(std::int32_t node, unsigned char c) const {
  const auto& edges = nodes_[static_cast<std::size_t>(node)].edges;
  const auto it = std::lower_bound(
      edges.begin(), edges.end(), c,
      [](const auto& edge, unsigned char ch) { return edge.first < ch; });
  if (it != edges.end() && it->first == c) return it->second;
  return -1;
}

AhoCorasick::AhoCorasick(const std::vector<std::string_view>& patterns) {
  nodes_.emplace_back();  // root
  pattern_lengths_.reserve(patterns.size());
  terminal_node_.reserve(patterns.size());

  // Phase 1: trie of patterns (goto function).
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::string_view pattern = patterns[p];
    HOLAP_REQUIRE(!pattern.empty(), "empty pattern");
    std::int32_t node = 0;
    for (const char ch : pattern) {
      const auto c = static_cast<unsigned char>(ch);
      std::int32_t next = child(node, c);
      if (next < 0) {
        next = static_cast<std::int32_t>(nodes_.size());
        auto& edges = nodes_[static_cast<std::size_t>(node)].edges;
        edges.insert(std::upper_bound(edges.begin(), edges.end(),
                                      std::make_pair(c, std::int32_t{0})),
                     {c, next});
        nodes_.emplace_back();
      }
      node = next;
    }
    outputs_.emplace_back(p, nodes_[static_cast<std::size_t>(node)]
                                 .output_head);
    nodes_[static_cast<std::size_t>(node)].output_head =
        static_cast<std::int32_t>(outputs_.size()) - 1;
    pattern_lengths_.push_back(pattern.size());
    terminal_node_.push_back(node);
  }

  // Phase 2: BFS fail links; merge output chains along fail links.
  std::queue<std::int32_t> bfs;
  for (const auto& [c, next] : nodes_[0].edges) {
    nodes_[static_cast<std::size_t>(next)].fail = 0;
    bfs.push(next);
  }
  while (!bfs.empty()) {
    const std::int32_t node = bfs.front();
    bfs.pop();
    for (const auto& [c, next] : nodes_[static_cast<std::size_t>(node)]
                                     .edges) {
      // Follow fail links from the parent's fail state.
      std::int32_t f = nodes_[static_cast<std::size_t>(node)].fail;
      while (f != 0 && child(f, c) < 0) {
        f = nodes_[static_cast<std::size_t>(f)].fail;
      }
      const std::int32_t via = child(f, c);
      const std::int32_t fail = (via >= 0 && via != next) ? via : 0;
      auto& next_node = nodes_[static_cast<std::size_t>(next)];
      next_node.fail = fail;
      // Append the fail state's output chain after our own, preserving
      // all matches without per-step chain walking at query time.
      if (next_node.output_head < 0) {
        next_node.output_head =
            nodes_[static_cast<std::size_t>(fail)].output_head;
      } else {
        std::int32_t tail = next_node.output_head;
        while (outputs_[static_cast<std::size_t>(tail)].second >= 0) {
          tail = outputs_[static_cast<std::size_t>(tail)].second;
        }
        outputs_[static_cast<std::size_t>(tail)].second =
            nodes_[static_cast<std::size_t>(fail)].output_head;
      }
      bfs.push(next);
    }
  }
}

std::int32_t AhoCorasick::step(std::int32_t node, unsigned char c) const {
  for (;;) {
    const std::int32_t next = child(node, c);
    if (next >= 0) return next;
    if (node == 0) return 0;
    node = nodes_[static_cast<std::size_t>(node)].fail;
  }
}

void AhoCorasick::scan(
    std::string_view text,
    const std::function<void(std::size_t, std::size_t)>& on_match) const {
  std::int32_t node = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    node = step(node, static_cast<unsigned char>(text[i]));
    for (std::int32_t out = nodes_[static_cast<std::size_t>(node)]
                                .output_head;
         out >= 0; out = outputs_[static_cast<std::size_t>(out)].second) {
      on_match(outputs_[static_cast<std::size_t>(out)].first, i + 1);
    }
  }
}

std::vector<AhoCorasick::Occurrence> AhoCorasick::match(
    std::string_view text) const {
  std::vector<Occurrence> occurrences;
  scan(text, [&](std::size_t pattern, std::size_t end) {
    occurrences.push_back({pattern, end});
  });
  return occurrences;
}

std::vector<std::size_t> AhoCorasick::match_exact(
    std::string_view text) const {
  std::vector<std::size_t> hits;
  match_exact(text, hits);
  return hits;
}

void AhoCorasick::match_exact(std::string_view text,
                              std::vector<std::size_t>& hits) const {
  hits.clear();
  std::int32_t node = 0;
  for (const char ch : text) {
    node = step(node, static_cast<unsigned char>(ch));
    if (node == 0 && child(0, static_cast<unsigned char>(ch)) < 0) {
      return;  // fell off the trie: no pattern can equal `text`
    }
  }
  for (std::int32_t out = nodes_[static_cast<std::size_t>(node)].output_head;
       out >= 0; out = outputs_[static_cast<std::size_t>(out)].second) {
    const std::size_t pattern = outputs_[static_cast<std::size_t>(out)].first;
    if (pattern_lengths_[pattern] == text.size()) hits.push_back(pattern);
  }
}

}  // namespace holap
