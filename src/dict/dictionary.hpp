// String dictionary for text-to-integer translation (§III-F).
//
// One dictionary maps each distinct string of a text column to a dense
// integer code; the GPU-resident table stores only the codes. Two search
// strategies are provided:
//
//   - kLinearScan: sequential search, cost proportional to dictionary
//     length. This is what the paper's measured translation function
//     P_DICT(D_L) = 0.0138e-6 * D_L models (Fig. 9 is linear in dictionary
//     length), so calibration benches use it; and
//   - kHashed: O(1) expected lookup via an index, the practical fast path
//     (the "more sophisticated translation algorithm" of the paper's
//     future work).
//
// Codes are dense and stable: the i-th distinct inserted string receives
// code i, so a dictionary doubles as the code→string decode table.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace holap {

enum class DictSearch : std::uint8_t { kLinearScan, kHashed };

class Dictionary {
 public:
  Dictionary() = default;

  /// Insert `s` if absent; return its code either way.
  std::int32_t encode_or_add(std::string_view s);

  /// Code of `s` using the chosen strategy; nullopt when absent.
  std::optional<std::int32_t> find(std::string_view s,
                                   DictSearch strategy) const;

  /// The string for a code; throws on out-of-range codes.
  const std::string& decode(std::int32_t code) const;

  std::size_t size() const { return by_code_.size(); }
  bool contains(std::string_view s) const {
    return find(s, DictSearch::kHashed).has_value();
  }

  /// Approximate heap footprint in bytes (strings + index), used by
  /// capacity accounting and the examples' reporting.
  std::size_t memory_bytes() const;

 private:
  // deque: stable element addresses under growth, so the index's
  // string_view keys can safely reference the stored strings.
  std::deque<std::string> by_code_;
  std::unordered_map<std::string_view, std::int32_t> index_;
};

}  // namespace holap
