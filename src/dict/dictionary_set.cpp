#include "dict/dictionary_set.hpp"

#include <algorithm>

#include "relational/generator.hpp"

namespace holap {

DictionarySet DictionarySet::build_from_table(const FactTable& table) {
  DictionarySet set;
  const TableSchema& schema = table.schema();
  for (int col : schema.text_columns()) {
    const ColumnSpec& spec = schema.column(col);
    const auto codes = table.dim_column(col);
    const std::int32_t max_code =
        codes.empty() ? -1 : *std::max_element(codes.begin(), codes.end());
    Dictionary& dict = set.create_column(col);
    // Cover the full code prefix [0, max_code] so every stored code decodes;
    // insertion in code order makes dictionary code == member code.
    const NameKind kind = text_column_name_kind(spec.dim);
    for (std::int32_t k = 0; k <= max_code; ++k) {
      dict.encode_or_add(synth_name(kind, static_cast<std::uint64_t>(k)));
    }
  }
  return set;
}

const Dictionary& DictionarySet::for_column(int col) const {
  const auto it = dicts_.find(col);
  HOLAP_REQUIRE(it != dicts_.end(), "no dictionary for column");
  return it->second;
}

Dictionary& DictionarySet::for_column(int col) {
  const auto it = dicts_.find(col);
  HOLAP_REQUIRE(it != dicts_.end(), "no dictionary for column");
  return it->second;
}

std::size_t DictionarySet::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [col, dict] : dicts_) bytes += dict.memory_bytes();
  return bytes;
}

std::vector<int> DictionarySet::columns() const {
  std::vector<int> cols;
  cols.reserve(dicts_.size());
  for (const auto& [col, dict] : dicts_) cols.push_back(col);
  return cols;
}

}  // namespace holap
