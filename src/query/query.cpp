#include "query/query.hpp"

#include <algorithm>
#include <sstream>

namespace holap {

const char* to_string(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "sum";
    case AggOp::kCount:
      return "count";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kAvg:
      return "avg";
  }
  return "?";
}

int Query::required_resolution() const {
  int r = 0;
  for (const auto& c : conditions) r = std::max(r, c.level);
  return r;
}

int Query::gpu_columns_accessed() const {
  return static_cast<int>(conditions.size()) +
         static_cast<int>(measures.size());
}

int Query::text_conditions() const {
  int n = 0;
  for (const auto& c : conditions) n += c.is_text() ? 1 : 0;
  return n;
}

bool Query::needs_translation() const {
  return std::any_of(conditions.begin(), conditions.end(),
                     [](const Condition& c) { return c.needs_translation(); });
}

void validate_query(const Query& q, const std::vector<Dimension>& dims,
                    const TableSchema& schema) {
  HOLAP_REQUIRE(!q.conditions.empty() || !q.measures.empty(),
                "query must have at least one condition or measure");
  for (const auto& c : q.conditions) {
    HOLAP_REQUIRE(c.dim >= 0 && c.dim < static_cast<int>(dims.size()),
                  "condition references unknown dimension");
    const Dimension& dim = dims[static_cast<std::size_t>(c.dim)];
    HOLAP_REQUIRE(c.level >= 0 && c.level < dim.level_count(),
                  "condition references unknown level");
    if (!c.is_text()) {
      const auto card =
          static_cast<std::int32_t>(dim.level(c.level).cardinality);
      HOLAP_REQUIRE(c.from >= 0 && c.to < card && c.from <= c.to,
                    "condition range out of bounds for level");
    } else {
      // Text parameters only translate against a dict-encoded column.
      // Admission is the last point with a caller to throw to: past it
      // the query runs on a worker thread, where the translators'
      // data-dependent HOLAP_REQUIRE would have no handler.
      const int col = schema.dimension_column(c.dim, c.level);
      HOLAP_REQUIRE(schema.column(col).encoding ==
                        ValueEncoding::kDictEncodedText,
                    "text parameters on a non-text column");
    }
  }
  for (int m : q.measures) {
    HOLAP_REQUIRE(m >= 0 && m < schema.column_count(),
                  "measure index out of range");
    HOLAP_REQUIRE(schema.column(m).kind == ColumnKind::kMeasure,
                  "measure index does not name a measure column");
  }
  if (q.op == AggOp::kCount) return;  // count needs no measure
  HOLAP_REQUIRE(!q.measures.empty(),
                "non-count aggregation requires at least one measure");
}

std::size_t subcube_bytes(const Query& q, const std::vector<Dimension>& dims,
                          int cube_level, std::size_t cell_bytes) {
  HOLAP_REQUIRE(cube_level >= q.required_resolution(),
                "cube resolution too coarse for query");
  std::size_t cells = 1;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const Dimension& dim = dims[d];
    // Narrowest condition in this dimension (if several, the intersection
    // is conservative; we take the finest-range product as eq. (3) does
    // with one condition per dimension).
    std::size_t width = dim.level(cube_level).cardinality;  // no condition
    for (const auto& c : q.conditions) {
      if (c.dim != static_cast<int>(d)) continue;
      const std::size_t fanout = dim.fanout(c.level, cube_level);
      std::size_t w;
      if (c.is_text()) {
        // IN-list of members at the condition's level.
        w = std::max<std::size_t>(c.text_values.size(), 1) * fanout;
      } else {
        w = static_cast<std::size_t>(c.to - c.from + 1) * fanout;
      }
      width = std::min(width, w);
    }
    cells *= width;
  }
  return cells * cell_bytes;
}

std::vector<int> distinct_columns_accessed(const Query& q,
                                           const TableSchema& schema) {
  std::vector<int> cols;
  for (const auto& c : q.conditions) {
    cols.push_back(schema.dimension_column(c.dim, c.level));
  }
  cols.insert(cols.end(), q.measures.begin(), q.measures.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

std::string to_string(const Query& q, const std::vector<Dimension>& dims) {
  std::ostringstream os;
  os << to_string(q.op) << '(';
  for (std::size_t i = 0; i < q.measures.size(); ++i) {
    if (i) os << ", ";
    os << "m" << q.measures[i];
  }
  os << ") where ";
  for (std::size_t i = 0; i < q.conditions.size(); ++i) {
    const auto& c = q.conditions[i];
    if (i) os << " and ";
    const Dimension& dim = dims[static_cast<std::size_t>(c.dim)];
    os << dim.name() << '.' << dim.level(c.level).name;
    if (c.is_text()) {
      os << " in {";
      for (std::size_t t = 0; t < c.text_values.size(); ++t) {
        if (t) os << ", ";
        os << '"' << c.text_values[t] << '"';
      }
      os << '}';
    } else {
      os << " in [" << c.from << ", " << c.to << ']';
    }
  }
  if (q.conditions.empty()) os << "true";
  return os.str();
}

}  // namespace holap
