// A small textual query language for the hybrid OLAP system.
//
// Grammar (case-sensitive keywords, whitespace-insensitive):
//
//   query     := agg '(' [measure (',' measure)*] ')'
//                [ 'where' condition ('and' condition)* ]
//   agg       := 'sum' | 'count' | 'avg' | 'min' | 'max'
//   measure   := identifier                      — a measure column name
//   condition := dim '.' level 'in' (range | strings)
//   range     := '[' integer ',' integer ']'     — inclusive member codes
//   strings   := '{' string (',' string)* '}'    — text parameters (IN-list)
//   string    := '"' ... '"' | '\'' ... '\''
//
// Examples:
//   sum(measure_0) where time.month in [3, 7]
//   avg(measure_1, measure_2) where geography.store in {"Marlowick"}
//   count() where product.brand in {'Nortek #1', 'Wintek #4'}
//
// parse_query() resolves names against the schema, validates ranges and
// returns a ready-to-schedule Query; errors carry the offending position.
#pragma once

#include <string_view>

#include "query/query.hpp"

namespace holap {

/// Thrown on malformed input; what() includes character position context.
class ParseError : public Error {
 public:
  ParseError(const std::string& message, std::size_t position);
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parse `text` into a validated Query over `schema` (whose dimensions
/// provide the dim/level name space).
Query parse_query(std::string_view text, const TableSchema& schema);

}  // namespace holap
