// Fluent query construction.
//
// The Query struct is deliberately plain (the scheduler and engines
// consume it directly); QueryBuilder is the ergonomic front door for
// applications: name-based dimension/level/measure resolution, chaining,
// and validation on build().
//
//   Query q = QueryBuilder(schema)
//                 .sum({"measure_0", "measure_1"})
//                 .where("time", "month", 3, 7)
//                 .where_text("geography", "store", {"Marlowick"})
//                 .build();
#pragma once

#include "query/query.hpp"

namespace holap {

class QueryBuilder {
 public:
  /// `schema` must outlive build().
  explicit QueryBuilder(const TableSchema& schema);

  /// Aggregation operator + measures by column name.
  QueryBuilder& sum(const std::vector<std::string>& measures);
  QueryBuilder& avg(const std::vector<std::string>& measures);
  QueryBuilder& min(const std::vector<std::string>& measures);
  QueryBuilder& max(const std::vector<std::string>& measures);
  QueryBuilder& count();

  /// Range condition on (dimension, level) by name; [from, to] inclusive
  /// member codes.
  QueryBuilder& where(const std::string& dim, const std::string& level,
                      std::int32_t from, std::int32_t to);

  /// Single-member equality condition.
  QueryBuilder& where_equals(const std::string& dim,
                             const std::string& level, std::int32_t code);

  /// Text IN-list condition on a dict-encoded column; the query will need
  /// translation before GPU processing.
  QueryBuilder& where_text(const std::string& dim, const std::string& level,
                           std::vector<std::string> values);

  /// Validate and return the query. The builder may be reused afterwards
  /// (it keeps its state).
  Query build() const;

 private:
  const TableSchema* schema_;
  Query query_;

  QueryBuilder& set_measures(AggOp op,
                             const std::vector<std::string>& measures);
  std::pair<int, int> resolve(const std::string& dim,
                              const std::string& level) const;
};

}  // namespace holap
