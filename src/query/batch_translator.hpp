// Batch text-to-integer translation — the paper's future-work
// "more sophisticated translation algorithm", built on Aho–Corasick.
//
// The baseline Translator performs one dictionary search per text
// parameter, so a query with many parameters multiplies the eq.-(18)
// upper bound. The batch algorithm inverts the loop: per text column it
// builds an Aho–Corasick automaton over THAT COLUMN'S query parameters and
// streams the dictionary through it once — every parameter resolves in a
// single pass, making translation cost P_DICT(D_L) per distinct column,
// independent of the parameter count:
//
//   ⌈T_TRANS_batch⌉ = Σ_{columns with text params} P_DICT(D_L|col)
//
// bench_future_translation quantifies what this buys the GPU pipeline.
#pragma once

#include <span>

#include "query/translator.hpp"

namespace holap {

class BatchTranslator {
 public:
  BatchTranslator(const TableSchema& schema, const DictionarySet& dicts);

  /// Translate all text conditions of `q` in place; produces exactly the
  /// codes Translator would (absent strings -> -1). The report's
  /// dictionary_entries_scanned counts one full pass per distinct column,
  /// not per parameter.
  TranslationReport translate(Query& q) const;

  /// Translate the text parameters of EVERY query in `batch` together, in
  /// place: per distinct column ACROSS THE WHOLE BATCH, one automaton over
  /// all of the batch's parameters for that column and one dictionary
  /// streaming pass. Produces exactly the codes per-query translate()
  /// would; the amortisation is the point — k batched queries sharing a
  /// text column cost one dictionary pass, not k. Null entries are
  /// skipped; an empty batch returns an empty (all_found) report.
  TranslationReport translate_all(std::span<Query* const> batch) const;

  /// Dictionary length per DISTINCT text column of `q` (the batch model's
  /// eq.-(18) input; compare Translator::dictionary_lengths, which lists
  /// one entry per parameter).
  std::vector<std::size_t> unique_dictionary_lengths(const Query& q) const;

 private:
  const TableSchema* schema_;
  const DictionarySet* dicts_;
};

}  // namespace holap
