#include "query/batch_translator.hpp"

#include <map>

#include "dict/aho_corasick.hpp"

namespace holap {

BatchTranslator::BatchTranslator(const TableSchema& schema,
                                 const DictionarySet& dicts)
    : schema_(&schema), dicts_(&dicts) {}

namespace {

/// One untranslated text parameter, addressed into its owning condition.
struct Slot {
  Condition* condition;
  std::size_t value_index;
};

}  // namespace

/// Collect `q`'s untranslated parameters into `by_column`, resetting
/// their codes to -1 (absent until a dictionary pass proves otherwise).
static void collect_slots(const TableSchema& schema, Query& q,
                          std::map<int, std::vector<Slot>>& by_column) {
  for (auto& c : q.conditions) {
    if (!c.needs_translation()) continue;
    const int col = schema.dimension_column(c.dim, c.level);
    HOLAP_REQUIRE(
        schema.column(col).encoding == ValueEncoding::kDictEncodedText,
        "text parameters on a non-text column");
    c.codes.assign(c.text_values.size(), -1);
    for (std::size_t v = 0; v < c.text_values.size(); ++v) {
      by_column[col].push_back({&c, v});
    }
  }
}

/// The shared engine: per column, an automaton over every collected
/// parameter and one streaming pass of that column's dictionary.
static void run_column_passes(const DictionarySet& dicts,
                              std::map<int, std::vector<Slot>>& by_column,
                              TranslationReport& report) {
  for (auto& [col, slots] : by_column) {
    std::vector<std::string_view> patterns;
    patterns.reserve(slots.size());
    for (const Slot& slot : slots) {
      patterns.push_back(slot.condition->text_values[slot.value_index]);
    }
    const AhoCorasick automaton(patterns);
    const Dictionary& dict = dicts.for_column(col);
    std::vector<std::size_t> hits;
    for (std::int32_t code = 0;
         code < static_cast<std::int32_t>(dict.size()); ++code) {
      automaton.match_exact(dict.decode(code), hits);
      for (const std::size_t p : hits) {
        Slot& slot = slots[p];
        slot.condition->codes[slot.value_index] = code;
      }
    }
    report.parameters_translated += static_cast<int>(slots.size());
    report.dictionary_entries_scanned += dict.size();  // one pass, total
    for (const Slot& slot : slots) {
      report.all_found = report.all_found &&
                         slot.condition->codes[slot.value_index] >= 0;
    }
  }
}

TranslationReport BatchTranslator::translate(Query& q) const {
  TranslationReport report;
  // Group the untranslated parameters by fact-table column, then one
  // automaton + one dictionary pass per column.
  std::map<int, std::vector<Slot>> by_column;
  collect_slots(*schema_, q, by_column);
  run_column_passes(*dicts_, by_column, report);
  return report;
}

TranslationReport BatchTranslator::translate_all(
    std::span<Query* const> batch) const {
  TranslationReport report;
  // Group every batched query's untranslated parameters by column FIRST,
  // so queries sharing a column share its single dictionary pass.
  std::map<int, std::vector<Slot>> by_column;
  for (Query* q : batch) {
    if (q == nullptr) continue;
    collect_slots(*schema_, *q, by_column);
  }
  run_column_passes(*dicts_, by_column, report);
  return report;
}

std::vector<std::size_t> BatchTranslator::unique_dictionary_lengths(
    const Query& q) const {
  std::map<int, std::size_t> lengths;
  for (const auto& c : q.conditions) {
    if (!c.is_text()) continue;
    const int col = schema_->dimension_column(c.dim, c.level);
    lengths[col] = dicts_->has_column(col) ? dicts_->for_column(col).size()
                                           : 0;
  }
  std::vector<std::size_t> out;
  out.reserve(lengths.size());
  for (const auto& [col, len] : lengths) out.push_back(len);
  return out;
}

}  // namespace holap
