// Random query workload generation.
//
// The paper's evaluation drives the system with a stream of queries of
// mixed resolution: coarse queries land on small pre-computed cubes (CPU),
// fine ones exceed the pre-computed resolutions or their deadline and go to
// the GPU. This generator produces such streams deterministically from a
// seed, with control over the level mix, selectivity, how often conditions
// on text columns arrive as strings, and how many measures are aggregated.
#pragma once

#include "common/rng.hpp"
#include "query/query.hpp"
#include "relational/names.hpp"

namespace holap {

struct WorkloadConfig {
  std::uint64_t seed = 7;
  /// Probability that a condition whose (dim, level) column is dict-encoded
  /// arrives with string parameters (and therefore needs translation).
  double text_probability = 0.5;
  /// Mean fraction of a level's extent covered by a range condition; the
  /// actual fraction is drawn uniformly in (0, 2*mean] and clamped to 1.
  double mean_selectivity = 0.15;
  /// Per-level selection weights (coarsest first). Size must equal the
  /// common level count; empty = uniform.
  std::vector<double> level_weights;
  /// Probability that a dimension carries a condition at all.
  double condition_probability = 0.9;
  /// Number of values in a text IN-list is uniform in [1, this].
  int max_text_values = 2;
  int min_measures = 1;
  int max_measures = 2;
};

/// Deterministic stream of valid queries over the given dimensions/schema.
class QueryGenerator {
 public:
  QueryGenerator(const std::vector<Dimension>& dims, const TableSchema& schema,
                 WorkloadConfig config);

  /// Next query in the stream; always passes validate_query.
  Query next();

  /// Generate a batch of `n` queries.
  std::vector<Query> batch(std::size_t n);

 private:
  const std::vector<Dimension>* dims_;
  const TableSchema* schema_;
  WorkloadConfig config_;
  SplitMix64 rng_;
  std::vector<double> level_cdf_;

  int sample_level(const Dimension& dim);
};

}  // namespace holap
