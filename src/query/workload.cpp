#include "query/workload.hpp"

#include <algorithm>

#include "relational/generator.hpp"

namespace holap {

QueryGenerator::QueryGenerator(const std::vector<Dimension>& dims,
                               const TableSchema& schema,
                               WorkloadConfig config)
    : dims_(&dims),
      schema_(&schema),
      config_(std::move(config)),
      rng_(config_.seed) {
  HOLAP_REQUIRE(!dims.empty(), "workload requires dimensions");
  HOLAP_REQUIRE(config_.text_probability >= 0.0 &&
                    config_.text_probability <= 1.0,
                "text_probability must be in [0,1]");
  HOLAP_REQUIRE(config_.mean_selectivity > 0.0 &&
                    config_.mean_selectivity <= 1.0,
                "mean_selectivity must be in (0,1]");
  HOLAP_REQUIRE(config_.min_measures >= 0 &&
                    config_.max_measures >= config_.min_measures,
                "measure bounds invalid");
  if (!config_.level_weights.empty()) {
    double total = 0.0;
    for (double w : config_.level_weights) {
      HOLAP_REQUIRE(w >= 0.0, "level weights must be non-negative");
      total += w;
    }
    HOLAP_REQUIRE(total > 0.0, "level weights must not all be zero");
    level_cdf_.resize(config_.level_weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < config_.level_weights.size(); ++i) {
      acc += config_.level_weights[i] / total;
      level_cdf_[i] = acc;
    }
  }
}

int QueryGenerator::sample_level(const Dimension& dim) {
  if (level_cdf_.empty()) {
    return static_cast<int>(
        rng_.uniform(static_cast<std::uint64_t>(dim.level_count())));
  }
  HOLAP_REQUIRE(level_cdf_.size() ==
                    static_cast<std::size_t>(dim.level_count()),
                "level_weights size must match dimension level count");
  const double u = rng_.uniform01();
  for (std::size_t i = 0; i < level_cdf_.size(); ++i) {
    if (u <= level_cdf_[i]) return static_cast<int>(i);
  }
  return dim.level_count() - 1;
}

Query QueryGenerator::next() {
  Query q;
  for (std::size_t d = 0; d < dims_->size(); ++d) {
    if (!rng_.bernoulli(config_.condition_probability)) continue;
    const Dimension& dim = (*dims_)[d];
    Condition c;
    c.dim = static_cast<int>(d);
    c.level = sample_level(dim);
    const auto card =
        static_cast<std::int64_t>(dim.level(c.level).cardinality);

    const int col = schema_->dimension_column(c.dim, c.level);
    const bool text_col = schema_->column(col).encoding ==
                          ValueEncoding::kDictEncodedText;
    if (text_col && rng_.bernoulli(config_.text_probability)) {
      const int n_values = static_cast<int>(
          rng_.uniform_int(1, std::max(1, config_.max_text_values)));
      const NameKind kind = text_column_name_kind(c.dim);
      for (int v = 0; v < n_values; ++v) {
        const auto code =
            static_cast<std::uint64_t>(rng_.uniform_int(0, card - 1));
        c.text_values.push_back(synth_name(kind, code));
      }
      // Range fields unused for text conditions, but keep them valid.
      c.from = 0;
      c.to = static_cast<std::int32_t>(card - 1);
    } else {
      const double sel = std::min(
          1.0, rng_.uniform_real(0.0, 2.0 * config_.mean_selectivity));
      const auto width = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(sel * static_cast<double>(card)));
      const std::int64_t from = rng_.uniform_int(0, card - width);
      c.from = static_cast<std::int32_t>(from);
      c.to = static_cast<std::int32_t>(from + width - 1);
    }
    q.conditions.push_back(std::move(c));
  }
  // A query with no condition at all is legal but dull; force at least one.
  if (q.conditions.empty()) {
    const Dimension& dim = (*dims_)[0];
    Condition c;
    c.dim = 0;
    c.level = 0;
    c.from = 0;
    c.to = static_cast<std::int32_t>(dim.level(0).cardinality - 1);
    q.conditions.push_back(c);
  }

  const auto& measures = schema_->measure_columns();
  const int n_measures = static_cast<int>(rng_.uniform_int(
      config_.min_measures,
      std::min<std::int64_t>(config_.max_measures,
                             static_cast<std::int64_t>(measures.size()))));
  // Sample distinct measures by shuffled prefix.
  std::vector<int> pool = measures;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto j = i + rng_.uniform(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  q.measures.assign(pool.begin(), pool.begin() + n_measures);
  q.op = n_measures == 0 ? AggOp::kCount : AggOp::kSum;

  validate_query(q, *dims_, *schema_);
  return q;
}

std::vector<Query> QueryGenerator::batch(std::size_t n) {
  std::vector<Query> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace holap
