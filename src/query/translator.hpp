// Text-to-integer query translation (§III-F).
//
// Every query routed to the GPU must have its string parameters replaced by
// integer dictionary codes first — the GPU-resident table holds no text.
// The Translator performs that substitution against a DictionarySet and
// reports how much dictionary work it did, which is what the translation
// partition's time model (eq. 18) charges for:
//
//   ⌈T_TRANS⌉ = Σ_{i ∈ CDT_QD} P_DICT(D_L|i)
//
// i.e. one dictionary search per text parameter, each costing time
// proportional to that column's dictionary length.
#pragma once

#include "dict/dictionary_set.hpp"
#include "query/query.hpp"

namespace holap {

/// Outcome of translating one query.
struct TranslationReport {
  int parameters_translated = 0;  ///< dictionary searches performed
  /// Σ dictionary length over all searches — the quantity eq. (18)'s upper
  /// bound is linear in; perfmodel turns it into seconds.
  std::size_t dictionary_entries_scanned = 0;
  bool all_found = true;  ///< false if any string was absent (query matches
                          ///< nothing in that condition)
};

class Translator {
 public:
  /// `schema` locates each condition's column; `dicts` supplies the
  /// per-column dictionaries; `strategy` selects the paper-faithful linear
  /// scan or the hashed fast path.
  Translator(const TableSchema& schema, const DictionarySet& dicts,
             DictSearch strategy = DictSearch::kLinearScan);

  /// Translate all text conditions of `q` in place: fills Condition::codes
  /// (absent strings yield code -1, which matches no row). Idempotent.
  TranslationReport translate(Query& q) const;

  /// Eq. (16)/(18) inputs without mutating the query: the dictionary
  /// lengths that would be searched. Used by the scheduler's estimator.
  std::vector<std::size_t> dictionary_lengths(const Query& q) const;

 private:
  const TableSchema* schema_;
  const DictionarySet* dicts_;
  DictSearch strategy_;
};

}  // namespace holap
