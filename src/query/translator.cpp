#include "query/translator.hpp"

namespace holap {

Translator::Translator(const TableSchema& schema, const DictionarySet& dicts,
                       DictSearch strategy)
    : schema_(&schema), dicts_(&dicts), strategy_(strategy) {}

TranslationReport Translator::translate(Query& q) const {
  TranslationReport report;
  for (auto& c : q.conditions) {
    if (!c.needs_translation()) continue;
    const int col = schema_->dimension_column(c.dim, c.level);
    HOLAP_REQUIRE(
        schema_->column(col).encoding == ValueEncoding::kDictEncodedText,
        "text parameters on a non-text column");
    const Dictionary& dict = dicts_->for_column(col);
    c.codes.clear();
    c.codes.reserve(c.text_values.size());
    for (const auto& s : c.text_values) {
      const auto code = dict.find(s, strategy_);
      if (!code) report.all_found = false;
      c.codes.push_back(code.value_or(-1));
      ++report.parameters_translated;
      report.dictionary_entries_scanned += dict.size();
    }
  }
  return report;
}

std::vector<std::size_t> Translator::dictionary_lengths(const Query& q) const {
  std::vector<std::size_t> lengths;
  for (const auto& c : q.conditions) {
    if (!c.is_text()) continue;
    const int col = schema_->dimension_column(c.dim, c.level);
    const std::size_t len =
        dicts_->has_column(col) ? dicts_->for_column(col).size() : 0;
    for (std::size_t i = 0; i < c.text_values.size(); ++i) {
      lengths.push_back(len);
    }
  }
  return lengths;
}

}  // namespace holap
