// OLAP query model.
//
// Eq. (1) of the paper formulates a query as a set of per-dimension
// conditions C_L(f, t, r): an inclusive member-code range [f, t] at
// hierarchy level (resolution) r. Eq. (11) generalises to the decomposed
// form Q_D where a dimension may carry conditions at several levels, each
// addressing one fact-table column. We represent both with one structure:
// a list of conditions, each naming (dimension, level, range), plus the
// measure columns to aggregate and the aggregation operator.
//
// A condition on a dict-encoded text column may arrive with *string*
// parameters (`text_values`); such a query must pass through the
// translation partition before GPU submission (§III-F). After translation
// the condition carries the equivalent integer codes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relational/dimensions.hpp"
#include "relational/schema.hpp"

namespace holap {

enum class AggOp : std::uint8_t { kSum, kCount, kMin, kMax, kAvg };

const char* to_string(AggOp op);

/// One filtration condition C_dim(from, to, level), eq. (1)/(11).
struct Condition {
  int dim = 0;    ///< dimension index
  int level = 0;  ///< hierarchy level r (0 = coarsest)
  std::int32_t from = 0;  ///< inclusive lower member code at `level`
  std::int32_t to = 0;    ///< inclusive upper member code at `level`
  /// String parameters for a text column; non-empty means the condition
  /// still needs text-to-integer translation. Interpreted as an IN-list.
  std::vector<std::string> text_values;
  /// Translated codes of `text_values` (filled by the Translator).
  std::vector<std::int32_t> codes;

  bool needs_translation() const {
    return !text_values.empty() && codes.size() != text_values.size();
  }
  bool is_text() const { return !text_values.empty(); }
};

/// Answer to a query, produced identically by the CPU cube engine and the
/// GPU table scan (their agreement is a core integration invariant).
struct QueryAnswer {
  double value = 0.0;      ///< aggregate value (or the count, for kCount)
  double row_count = 0.0;  ///< number of matching fact rows
  bool empty() const { return row_count == 0.0; }
};

/// A query: conditions + measures + aggregation operator.
struct Query {
  std::vector<Condition> conditions;
  std::vector<int> measures;  ///< schema indices of measure columns
  AggOp op = AggOp::kSum;

  /// Eq. (2): the required cube resolution R — the highest (finest) level
  /// any condition needs. A pre-computed cube can answer the query only if
  /// its resolution is at least R in every dimension.
  int required_resolution() const;

  /// Eq. (12): columns a GPU scan touches — one per filtration condition
  /// plus one per aggregated measure. Follows the paper exactly: two
  /// conditions on the same column count twice (each performs its own
  /// column pass in the modeled kernel). See distinct_columns_accessed()
  /// for the deduplicated view.
  int gpu_columns_accessed() const;

  /// Eq. (16): number of conditions carrying text parameters, i.e. the
  /// number of dictionary searches the translation partition must run.
  int text_conditions() const;

  bool needs_translation() const;
};

/// Validate a query against dimensions and schema: condition ranges inside
/// level cardinalities, measures exist, at most sensible shapes. Throws
/// InvalidArgument with a precise message on the first violation.
void validate_query(const Query& q, const std::vector<Dimension>& dims,
                    const TableSchema& schema);

/// Eq. (3): size of the sub-cube a CPU must traverse to answer `q` on a
/// uniform-resolution cube at level `cube_level`, in bytes.
///
/// Every condition's range is widened from its own level to the cube's
/// level (fanout multiplication); dimensions without a condition contribute
/// their full extent. `cell_bytes` is E_size. (The paper's printed formula
/// multiplies by 1024^2 where the MB conversion should divide; we compute
/// exact bytes and convert explicitly at call sites.)
std::size_t subcube_bytes(const Query& q, const std::vector<Dimension>& dims,
                          int cube_level, std::size_t cell_bytes);

/// The Q_D decomposition of eq. (11) made explicit: the distinct
/// fact-table columns the query addresses (conditions resolved through
/// the schema, then measures), ascending. Unlike eq. (12)'s count this
/// deduplicates — the quantity a smarter kernel would stream.
std::vector<int> distinct_columns_accessed(const Query& q,
                                           const TableSchema& schema);

/// Human-readable one-line rendering for logs and examples.
std::string to_string(const Query& q, const std::vector<Dimension>& dims);

}  // namespace holap
