#include "query/query_builder.hpp"

namespace holap {

QueryBuilder::QueryBuilder(const TableSchema& schema) : schema_(&schema) {}

QueryBuilder& QueryBuilder::set_measures(
    AggOp op, const std::vector<std::string>& measures) {
  query_.op = op;
  query_.measures.clear();
  for (const std::string& name : measures) {
    const auto col = schema_->find_column(name);
    HOLAP_REQUIRE(col.has_value() &&
                      schema_->column(*col).kind == ColumnKind::kMeasure,
                  "'" + name + "' is not a measure column");
    query_.measures.push_back(*col);
  }
  return *this;
}

QueryBuilder& QueryBuilder::sum(const std::vector<std::string>& measures) {
  return set_measures(AggOp::kSum, measures);
}
QueryBuilder& QueryBuilder::avg(const std::vector<std::string>& measures) {
  return set_measures(AggOp::kAvg, measures);
}
QueryBuilder& QueryBuilder::min(const std::vector<std::string>& measures) {
  return set_measures(AggOp::kMin, measures);
}
QueryBuilder& QueryBuilder::max(const std::vector<std::string>& measures) {
  return set_measures(AggOp::kMax, measures);
}
QueryBuilder& QueryBuilder::count() {
  query_.op = AggOp::kCount;
  query_.measures.clear();
  return *this;
}

std::pair<int, int> QueryBuilder::resolve(const std::string& dim,
                                          const std::string& level) const {
  const auto& dims = schema_->dimensions();
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (dims[d].name() != dim) continue;
    for (int l = 0; l < dims[d].level_count(); ++l) {
      if (dims[d].level(l).name == level) return {static_cast<int>(d), l};
    }
    throw InvalidArgument("dimension '" + dim + "' has no level '" + level +
                          "'");
  }
  throw InvalidArgument("unknown dimension '" + dim + "'");
}

QueryBuilder& QueryBuilder::where(const std::string& dim,
                                  const std::string& level,
                                  std::int32_t from, std::int32_t to) {
  const auto [d, l] = resolve(dim, level);
  Condition c;
  c.dim = d;
  c.level = l;
  c.from = from;
  c.to = to;
  query_.conditions.push_back(std::move(c));
  return *this;
}

QueryBuilder& QueryBuilder::where_equals(const std::string& dim,
                                         const std::string& level,
                                         std::int32_t code) {
  return where(dim, level, code, code);
}

QueryBuilder& QueryBuilder::where_text(const std::string& dim,
                                       const std::string& level,
                                       std::vector<std::string> values) {
  HOLAP_REQUIRE(!values.empty(), "where_text requires at least one value");
  const auto [d, l] = resolve(dim, level);
  const int col = schema_->dimension_column(d, l);
  HOLAP_REQUIRE(
      schema_->column(col).encoding == ValueEncoding::kDictEncodedText,
      "column '" + schema_->column(col).name + "' is not a text column");
  Condition c;
  c.dim = d;
  c.level = l;
  c.text_values = std::move(values);
  c.from = 0;
  c.to = static_cast<std::int32_t>(
             schema_->dimensions()[static_cast<std::size_t>(d)]
                 .level(l)
                 .cardinality) -
         1;
  query_.conditions.push_back(std::move(c));
  return *this;
}

Query QueryBuilder::build() const {
  validate_query(query_, schema_->dimensions(), *schema_);
  return query_;
}

}  // namespace holap
