#include "query/parser.hpp"

#include <cctype>

namespace holap {

ParseError::ParseError(const std::string& message, std::size_t position)
    : Error("parse error at position " + std::to_string(position) + ": " +
            message),
      position_(position) {}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const TableSchema& schema)
      : text_(text), schema_(&schema) {}

  Query parse() {
    Query q;
    q.op = parse_agg();
    expect('(');
    skip_ws();
    if (!looking_at(')')) {
      for (;;) {
        q.measures.push_back(parse_measure());
        skip_ws();
        if (!consume_if(',')) break;
      }
    }
    expect(')');
    skip_ws();
    if (consume_keyword("where")) {
      for (;;) {
        q.conditions.push_back(parse_condition());
        skip_ws();
        if (!consume_keyword("and")) break;
      }
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input");
    }
    try {
      validate_query(q, schema_->dimensions(), *schema_);
    } catch (const InvalidArgument& e) {
      throw ParseError(e.what(), pos_);
    }
    return q;
  }

 private:
  std::string_view text_;
  const TableSchema* schema_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool looking_at(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume_if(char c) {
    if (!looking_at(c)) return false;
    ++pos_;
    return true;
  }

  void expect(char c) {
    if (!consume_if(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  static bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '#';
  }

  std::string_view peek_identifier() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() && ident_char(text_[end])) ++end;
    return text_.substr(pos_, end - pos_);
  }

  std::string_view parse_identifier(const char* what) {
    const std::string_view id = peek_identifier();
    if (id.empty()) fail(std::string("expected ") + what);
    pos_ += id.size();
    return id;
  }

  bool consume_keyword(std::string_view keyword) {
    if (peek_identifier() != keyword) return false;
    pos_ += keyword.size();
    return true;
  }

  AggOp parse_agg() {
    const std::string_view id = parse_identifier("aggregation operator");
    if (id == "sum") return AggOp::kSum;
    if (id == "count") return AggOp::kCount;
    if (id == "avg") return AggOp::kAvg;
    if (id == "min") return AggOp::kMin;
    if (id == "max") return AggOp::kMax;
    pos_ -= id.size();
    fail("unknown aggregation operator '" + std::string(id) + "'");
  }

  int parse_measure() {
    const std::string_view name = parse_identifier("measure name");
    const auto col = schema_->find_column(std::string(name));
    if (!col || schema_->column(*col).kind != ColumnKind::kMeasure) {
      pos_ -= name.size();
      fail("'" + std::string(name) + "' is not a measure column");
    }
    return *col;
  }

  std::int64_t parse_integer() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    std::size_t digits = 0;
    std::int64_t value = 0;
    bool negative = start < pos_ && text_[start] == '-';
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      ++digits;
      ++pos_;
    }
    if (digits == 0) {
      pos_ = start;
      fail("expected an integer");
    }
    return negative ? -value : value;
  }

  std::string parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
      fail("expected a quoted string");
    }
    const char quote = text_[pos_++];
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) fail("unterminated string literal");
    ++pos_;  // closing quote
    return out;
  }

  Condition parse_condition() {
    const std::size_t at = pos_;
    const std::string_view dim_name = parse_identifier("dimension name");
    expect('.');
    const std::string_view level_name = parse_identifier("level name");

    Condition c;
    c.dim = -1;
    const auto& dims = schema_->dimensions();
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (dims[d].name() != dim_name) continue;
      c.dim = static_cast<int>(d);
      c.level = -1;
      for (int l = 0; l < dims[d].level_count(); ++l) {
        if (dims[d].level(l).name == level_name) c.level = l;
      }
      if (c.level < 0) {
        pos_ = at;
        fail("dimension '" + std::string(dim_name) + "' has no level '" +
             std::string(level_name) + "'");
      }
    }
    if (c.dim < 0) {
      pos_ = at;
      fail("unknown dimension '" + std::string(dim_name) + "'");
    }

    if (!consume_keyword("in")) fail("expected 'in'");
    skip_ws();
    if (consume_if('[')) {
      c.from = static_cast<std::int32_t>(parse_integer());
      expect(',');
      c.to = static_cast<std::int32_t>(parse_integer());
      expect(']');
      return c;
    }
    if (consume_if('{')) {
      for (;;) {
        c.text_values.push_back(parse_string());
        skip_ws();
        if (!consume_if(',')) break;
      }
      expect('}');
      // Text conditions require a dict-encoded column; surface the error
      // here rather than at translation time.
      const int col = schema_->dimension_column(c.dim, c.level);
      if (schema_->column(col).encoding != ValueEncoding::kDictEncodedText) {
        pos_ = at;
        fail("column '" + schema_->column(col).name +
             "' is not a text column; use a [from, to] range");
      }
      // Keep the range fields valid for validate_query.
      c.from = 0;
      c.to = static_cast<std::int32_t>(
                 schema_->dimensions()[static_cast<std::size_t>(c.dim)]
                     .level(c.level)
                     .cardinality) -
             1;
      return c;
    }
    fail("expected '[from, to]' or '{\"string\", ...}'");
  }
};

}  // namespace

Query parse_query(std::string_view text, const TableSchema& schema) {
  return Parser(text, schema).parse();
}

}  // namespace holap
