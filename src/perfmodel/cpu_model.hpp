// CPU performance model for OLAP cube processing (§III-B/D).
//
// Cube aggregation is memory-bandwidth-bound, so query processing time is a
// function of the sub-cube size alone. The paper models it piecewise over
// sub-cube size SC (in MB): a power law a·SC^b below a 512 MB crossover
// (Range A: the sub-cube partially fits in cache / bandwidth has not
// saturated) and a linear function a·SC + b above it (Range B: streaming at
// saturated bandwidth), eq. (4).
//
// Published presets (dual Xeon X5667):
//   4 threads  (eq. 7):  A: 1e-4·SC^0.9341      B: 5e-5·SC + 0.0096
//   8 threads  (eq. 10): A: 6e-5·SC^0.984       B: 4e-5·SC + 0.0146
// The sequential engine is modelled from its measured ~1 GB/s streaming
// bandwidth (§III-D's "maximum memory bandwidth of 1 GB per second").
#pragma once

#include "common/stats.hpp"
#include "common/units.hpp"

namespace holap {

/// The 512 MB Range-A/Range-B crossover of eq. (4).
inline constexpr Megabytes kCpuModelSplitMb{512.0};

class CpuPerfModel {
 public:
  /// Piecewise model from explicit coefficients.
  /// Range A: power.a * SC^power.b; Range B: linear.a * SC + linear.b.
  CpuPerfModel(FitResult power, FitResult linear,
               Megabytes split_mb = kCpuModelSplitMb);

  /// Estimated processing time for a sub-cube of `sc_mb` MB.
  Seconds seconds(Megabytes sc_mb) const;

  /// Effective bandwidth implied by the model at a given sub-cube size.
  GbPerSec gb_per_second(Megabytes sc_mb) const;

  const FitResult& range_a() const { return power_; }
  const FitResult& range_b() const { return linear_; }
  Megabytes split_mb() const { return split_mb_; }

  /// Eq. (7): the published 4-thread model.
  static CpuPerfModel paper_4t();
  /// Eq. (10): the published 8-thread model.
  static CpuPerfModel paper_8t();
  /// Sequential engine: pure streaming at `bandwidth` with a fixed
  /// per-query overhead. Both ranges collapse to the same linear law.
  static CpuPerfModel bandwidth_model(GbPerSec bandwidth,
                                      Seconds overhead = Seconds{0.002});
  /// Published model for a thread count, as the scheduler configures it:
  /// 1 → bandwidth_model(GbPerSec{1.0}) (the original single-threaded
  /// engine), 4 → paper_4t(), 8 → paper_8t(). Other counts interpolate
  /// bandwidth between the published anchors.
  static CpuPerfModel paper_for_threads(int threads);

  /// Re-fit the paper's functional form from measured (size MB, seconds)
  /// samples: log-log OLS below `split_mb`, OLS above. Samples must cover
  /// a range; a side with fewer than 2 samples inherits the other side's
  /// law evaluated continuously.
  static CpuPerfModel fit(std::span<const double> sizes_mb,
                          std::span<const double> seconds,
                          Megabytes split_mb = kCpuModelSplitMb);

 private:
  FitResult power_;
  FitResult linear_;
  Megabytes split_mb_;
};

}  // namespace holap
