// GPU partition performance model (§III-E).
//
// A GPU partition's query time is linear in the fraction of fact-table
// columns the query touches (eq. 13): T = a·(C/C_TOT) + b, with
// coefficients per partition size measured on a 4 GB table (Figure 8,
// eq. 14/15 for the Tesla C2070):
//
//   1 SM:  0.003   ·(C/C_TOT) + 0.0258
//   2 SM:  0.0015  ·(C/C_TOT) + 0.013
//   4 SM:  0.0008  ·(C/C_TOT) + 0.0065
//   14 SM: 0.00021 ·(C/C_TOT) + 0.0020
//
// The published constants follow a near-perfect 1/n_SM scaling
// (a ≈ 0.003/n, b ≈ 0.0258/n) — scan work divides evenly across SMs — so
// partition sizes without a published row use that law. Table size scales
// both coefficients proportionally (the scan streams the whole column).
#pragma once

#include "common/stats.hpp"
#include "common/units.hpp"

namespace holap {

class GpuPerfModel {
 public:
  /// T = a·col_fraction + b, valid for the table size it was measured on.
  GpuPerfModel(double a, double b);

  /// Estimated time for a query touching `col_fraction` = C/C_TOT of the
  /// table's columns; fraction in [0, 1].
  Seconds seconds(double col_fraction) const;

  double a() const { return a_; }
  double b() const { return b_; }

  /// Published C2070 model for a partition of `n_sms` SMs (exact constants
  /// for 1/2/4/14; the 1/n law otherwise), for the paper's 4 GB table.
  static GpuPerfModel paper_c2070(int n_sms);

  /// Same model rescaled to a different table size (both coefficients
  /// scale with the bytes streamed).
  static GpuPerfModel paper_c2070_scaled(
      int n_sms, Megabytes table_mb,
      Megabytes reference_mb = Megabytes{4096.0});

  /// Re-fit from measured (col_fraction, seconds) samples.
  static GpuPerfModel fit(std::span<const double> fractions,
                          std::span<const double> seconds);

 private:
  double a_;
  double b_;
};

}  // namespace holap
