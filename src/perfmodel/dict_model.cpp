#include "perfmodel/dict_model.hpp"

#include "common/error.hpp"

namespace holap {

DictPerfModel::DictPerfModel(double seconds_per_entry)
    : k_(seconds_per_entry) {
  HOLAP_REQUIRE(k_ > 0.0, "per-entry cost must be positive");
}

Seconds DictPerfModel::search_seconds(std::size_t entries) const {
  return Seconds{k_ * static_cast<double>(entries)};
}

Seconds DictPerfModel::translation_seconds(
    std::span<const std::size_t> dictionary_lengths) const {
  Seconds total{};
  for (std::size_t len : dictionary_lengths) total += search_seconds(len);
  return total;
}

DictPerfModel DictPerfModel::paper() { return DictPerfModel(0.0138e-6); }

DictPerfModel DictPerfModel::fit(std::span<const double> lengths,
                                 std::span<const double> seconds) {
  const FitResult f = fit_linear_origin(lengths, seconds);
  return DictPerfModel(f.a);
}

}  // namespace holap
