// Native calibration: measure this host's engines and fit the paper's
// model forms to them.
//
// The paper derives every performance function from benchmarks on its test
// system ("system performance variables … are measured by benchmarks and
// stored inside the scheduler", §III-G). These harnesses are those
// benchmarks: a sub-cube size sweep over the real aggregation kernel fits a
// CpuPerfModel (Figures 4/5), and a dictionary-length sweep over the real
// linear-scan search fits a DictPerfModel (Figure 9). Any host can thereby
// regenerate its own coefficients next to the published ones.
#pragma once

#include <cstdint>
#include <vector>

#include "perfmodel/cpu_model.hpp"
#include "perfmodel/dict_model.hpp"

namespace holap {

/// One measured point of a sweep.
struct CalibrationSample {
  double x = 0.0;     ///< sub-cube MB, or dictionary length
  Seconds seconds{};  ///< best-of-repetitions wall time
};

struct CpuCalibrationConfig {
  /// Sub-cube sizes to measure, in MB. Must be positive and ascending.
  std::vector<Megabytes> sizes_mb = {
      Megabytes{1},  Megabytes{2},  Megabytes{4},  Megabytes{8},
      Megabytes{16}, Megabytes{32}, Megabytes{64}, Megabytes{128}};
  /// 0 = sequential engine; n >= 1 = OpenMP engine with n threads.
  int threads = 0;
  /// Wall time is the best of this many repetitions (noise floor).
  int repetitions = 3;
  /// Crossover passed to CpuPerfModel::fit.
  Megabytes split_mb = kCpuModelSplitMb;
};

struct CpuCalibrationResult {
  std::vector<CalibrationSample> samples;
  CpuPerfModel model;
  /// Measured streaming bandwidth (GB/s) at each sample, aligned with
  /// `samples` — the Figure 3 series.
  std::vector<double> bandwidth_gbps;
};

/// Run the sub-cube sweep on this host. Allocates one cube of the largest
/// requested size (sizes beyond free memory should not be requested).
CpuCalibrationResult calibrate_cpu(const CpuCalibrationConfig& config);

struct DictCalibrationConfig {
  /// Dictionary lengths (entry counts) to measure.
  std::vector<std::size_t> lengths = {1'000,   5'000,   10'000, 50'000,
                                      100'000, 500'000, 1'000'000};
  /// Searches averaged per length (each is a full linear scan: the paper's
  /// model is the upper bound, i.e. the absent-string worst case).
  int searches = 50;
};

struct DictCalibrationResult {
  std::vector<CalibrationSample> samples;
  DictPerfModel model;
};

/// Run the dictionary sweep on this host using the linear-scan search.
DictCalibrationResult calibrate_dict(const DictCalibrationConfig& config);

}  // namespace holap
