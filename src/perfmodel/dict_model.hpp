// Dictionary search (translation) performance model (§III-F).
//
// One dictionary search costs time proportional to the dictionary length
// (eq. 17): P_DICT(D_L) = k · D_L with the published k = 0.0138 µs/entry
// for the paper's test system. A query's translation time upper bound
// (eq. 18) sums P_DICT over every text parameter's dictionary.
#pragma once

#include <span>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace holap {

class DictPerfModel {
 public:
  explicit DictPerfModel(double seconds_per_entry);

  /// Time of one search in a dictionary of `entries` strings.
  Seconds search_seconds(std::size_t entries) const;

  /// Eq. (18): translation time for a query whose text parameters hit
  /// dictionaries of the given lengths (one entry per parameter).
  Seconds translation_seconds(
      std::span<const std::size_t> dictionary_lengths) const;

  double seconds_per_entry() const { return k_; }

  /// The published constant: 0.0138e-6 s per dictionary entry.
  static DictPerfModel paper();

  /// Re-fit from measured (dictionary length, seconds) samples
  /// (through-origin OLS, matching the eq. 17 form).
  static DictPerfModel fit(std::span<const double> lengths,
                           std::span<const double> seconds);

 private:
  double k_;
};

}  // namespace holap
