#include "perfmodel/calibrate.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "cube/aggregate.hpp"
#include "dict/dictionary.hpp"
#include "relational/names.hpp"

namespace holap {

CpuCalibrationResult calibrate_cpu(const CpuCalibrationConfig& config) {
  HOLAP_REQUIRE(!config.sizes_mb.empty(), "calibration requires sizes");
  HOLAP_REQUIRE(std::is_sorted(config.sizes_mb.begin(), config.sizes_mb.end()),
                "sizes must be ascending");
  HOLAP_REQUIRE(config.sizes_mb.front() > Megabytes{0.0},
                "sizes must be positive");
  HOLAP_REQUIRE(config.repetitions >= 1, "repetitions must be >= 1");

  // One 2-d cube sized to the largest request. Rows of 0.5 MB each keep
  // the outer dimension wide enough for OpenMP to spread across threads
  // while inner runs stay long contiguous streams.
  constexpr std::uint32_t kRunCells = 65'536;  // 0.5 MB of doubles
  const double max_mb = config.sizes_mb.back().value();
  const auto outer = static_cast<std::uint32_t>(
      std::max(1.0, max_mb * 2.0 + 0.5));
  const std::vector<Dimension> dims = {
      Dimension("calib_rows", {{"row", outer}}),
      Dimension("calib_cols", {{"col", kRunCells}}),
  };
  DenseCube cube(dims, 0, CubeBasis::kSum, 0);
  // Fill with nonzero data so the scan cannot be optimised away and sums
  // are checkable.
  SplitMix64 rng(1234);
  for (auto& c : cube.cells()) c = rng.uniform01();

  CpuCalibrationResult result{
      {}, CpuPerfModel::paper_4t(), {}};  // model replaced below
  for (const Megabytes size_mb : config.sizes_mb) {
    auto rows = static_cast<std::int32_t>(size_mb.value() * 2.0 + 0.5);
    rows = std::clamp<std::int32_t>(rows, 1,
                                    static_cast<std::int32_t>(outer));
    CubeRegion region;
    region.dims = {{{0, rows - 1}},
                   {{0, static_cast<std::int32_t>(kRunCells) - 1}}};
    Seconds best{};
    double checksum = 0.0;
    for (int rep = 0; rep < config.repetitions; ++rep) {
      WallTimer timer;
      const AggregateResult agg =
          aggregate_region(cube, region, config.threads);
      const Seconds t = timer.elapsed();
      checksum += agg.value;  // defeat dead-code elimination
      if (rep == 0 || t < best) best = t;
    }
    HOLAP_ASSERT(checksum > 0.0, "calibration scan produced no data");
    const double actual_mb =
        static_cast<double>(rows) * kRunCells * sizeof(double) /
        static_cast<double>(kMiB);
    result.samples.push_back({actual_mb, best});
    result.bandwidth_gbps.push_back(
        best > Seconds{0.0} ? actual_mb / 1024.0 / best.value() : 0.0);
  }

  std::vector<double> xs, ys;
  for (const auto& s : result.samples) {
    xs.push_back(s.x);
    ys.push_back(s.seconds.value());
  }
  result.model = CpuPerfModel::fit(xs, ys, config.split_mb);
  return result;
}

DictCalibrationResult calibrate_dict(const DictCalibrationConfig& config) {
  HOLAP_REQUIRE(!config.lengths.empty(), "calibration requires lengths");
  HOLAP_REQUIRE(config.searches >= 1, "searches must be >= 1");

  DictCalibrationResult result{{}, DictPerfModel::paper()};
  for (const std::size_t length : config.lengths) {
    Dictionary dict;
    for (std::size_t i = 0; i < length; ++i) {
      dict.encode_or_add(synth_name(NameKind::kCity, i));
    }
    // Absent string: every search scans the full dictionary, matching the
    // upper-bound semantics of eq. (18).
    const std::string absent = "~absent-key~";
    std::int64_t sink = 0;
    WallTimer timer;
    for (int s = 0; s < config.searches; ++s) {
      const auto found = dict.find(absent, DictSearch::kLinearScan);
      sink = sink + (found ? *found : -1);
    }
    const Seconds per_search =
        timer.elapsed() / static_cast<double>(config.searches);
    HOLAP_ASSERT(sink < 0, "absent key unexpectedly found");
    result.samples.push_back({static_cast<double>(length), per_search});
  }

  std::vector<double> xs, ys;
  for (const auto& s : result.samples) {
    xs.push_back(s.x);
    ys.push_back(s.seconds.value());
  }
  result.model = DictPerfModel::fit(xs, ys);
  return result;
}

}  // namespace holap
