#include "perfmodel/gpu_model.hpp"

#include "common/error.hpp"

namespace holap {

GpuPerfModel::GpuPerfModel(double a, double b) : a_(a), b_(b) {
  HOLAP_REQUIRE(a_ >= 0.0 && b_ >= 0.0,
                "GPU model coefficients must be non-negative");
}

Seconds GpuPerfModel::seconds(double col_fraction) const {
  HOLAP_REQUIRE(col_fraction >= 0.0 && col_fraction <= 1.0,
                "column fraction must be in [0,1]");
  return Seconds{a_ * col_fraction + b_};
}

GpuPerfModel GpuPerfModel::paper_c2070(int n_sms) {
  HOLAP_REQUIRE(n_sms >= 1 && n_sms <= 14,
                "C2070 has 14 SMs; partition size out of range");
  // Published anchors first; every other partition size interpolates the
  // 1-SM law by 1/n. The domain is an open int range, not an enumeration,
  // so this is an if-chain — the analyzer bans `default:` labels, which
  // would hide a new anchor the same way they hide a new enumerator.
  if (n_sms == 1) return {0.003, 0.0258};     // eq. (14)
  if (n_sms == 2) return {0.0015, 0.013};     // eq. (14)
  if (n_sms == 4) return {0.0008, 0.0065};    // eq. (14)
  if (n_sms == 14) return {0.00021, 0.0020};  // eq. (15)
  const double n = static_cast<double>(n_sms);
  return {0.003 / n, 0.0258 / n};
}

GpuPerfModel GpuPerfModel::paper_c2070_scaled(int n_sms, Megabytes table_mb,
                                              Megabytes reference_mb) {
  HOLAP_REQUIRE(table_mb > Megabytes{0.0} && reference_mb > Megabytes{0.0},
                "table sizes must be positive");
  const GpuPerfModel base = paper_c2070(n_sms);
  const double scale = table_mb / reference_mb;
  return {base.a_ * scale, base.b_ * scale};
}

GpuPerfModel GpuPerfModel::fit(std::span<const double> fractions,
                               std::span<const double> seconds) {
  const FitResult f = fit_linear(fractions, seconds);
  return {f.a, f.b};
}

}  // namespace holap
