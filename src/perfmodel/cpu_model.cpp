#include "perfmodel/cpu_model.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace holap {

CpuPerfModel::CpuPerfModel(FitResult power, FitResult linear,
                           Megabytes split_mb)
    : power_(power), linear_(linear), split_mb_(split_mb) {
  HOLAP_REQUIRE(split_mb_ > Megabytes{0.0}, "split must be positive");
  HOLAP_REQUIRE(power_.a > 0.0, "Range A scale must be positive");
  HOLAP_REQUIRE(linear_.a > 0.0, "Range B slope must be positive");
}

Seconds CpuPerfModel::seconds(Megabytes sc_mb) const {
  HOLAP_REQUIRE(sc_mb >= Megabytes{0.0}, "sub-cube size must be non-negative");
  if (sc_mb <= Megabytes{0.0}) return Seconds{0.0};
  if (sc_mb < split_mb_) return Seconds{eval_power_law(power_, sc_mb.value())};
  return Seconds{eval_linear(linear_, sc_mb.value())};
}

GbPerSec CpuPerfModel::gb_per_second(Megabytes sc_mb) const {
  const Seconds t = seconds(sc_mb);
  if (t <= Seconds{0.0}) return GbPerSec{0.0};
  return to_gb_per_sec(sc_mb / t);
}

CpuPerfModel CpuPerfModel::paper_4t() {
  return CpuPerfModel({1e-4, 0.9341, 1.0}, {5e-5, 0.0096, 1.0});
}

CpuPerfModel CpuPerfModel::paper_8t() {
  return CpuPerfModel({6e-5, 0.984, 1.0}, {4e-5, 0.0146, 1.0});
}

CpuPerfModel CpuPerfModel::bandwidth_model(GbPerSec bandwidth,
                                           Seconds overhead) {
  HOLAP_REQUIRE(bandwidth > GbPerSec{0.0}, "bandwidth must be positive");
  const double s_per_mb = 1.0 / to_mb_per_sec(bandwidth).value();
  // Pure streaming is linear in SC on both sides of the crossover; a
  // power law with exponent 1 expresses Range A identically, keeping the
  // model continuous. The fixed overhead lands in Range B's intercept and
  // Range A's additive floor is folded in by shifting the scale slightly —
  // for simplicity both ranges use the same linear law via exponent 1.
  return CpuPerfModel({s_per_mb, 1.0, 1.0}, {s_per_mb, overhead.value(), 1.0});
}

CpuPerfModel CpuPerfModel::paper_for_threads(int threads) {
  HOLAP_REQUIRE(threads >= 1, "thread count must be >= 1");
  if (threads == 1) return bandwidth_model(GbPerSec{1.0});
  if (threads == 4) return paper_4t();
  if (threads >= 8) return paper_8t();
  // Interpolate effective large-SC bandwidth between the published anchors
  // (1T: 1 GB/s, 4T: 19.5 GB/s, 8T: 24.4 GB/s) and keep the nearest
  // anchor's fixed costs. Scheduling only needs a monotone, roughly-right
  // model for non-anchor counts.
  auto bw_of = [](const CpuPerfModel& m) { return 1.0 / (m.range_b().a * 1024.0); };
  const CpuPerfModel lo =
      threads < 4 ? bandwidth_model(GbPerSec{1.0}) : paper_4t();
  const CpuPerfModel hi = threads < 4 ? paper_4t() : paper_8t();
  const int lo_t = threads < 4 ? 1 : 4;
  const int hi_t = threads < 4 ? 4 : 8;
  const double f = static_cast<double>(threads - lo_t) /
                   static_cast<double>(hi_t - lo_t);
  const double bw = bw_of(lo) + f * (bw_of(hi) - bw_of(lo));
  const double s_per_mb = 1.0 / (bw * 1024.0);
  const FitResult linear{s_per_mb, lo.range_b().b +
                                       f * (hi.range_b().b - lo.range_b().b),
                         1.0};
  // Range A: scale the nearer anchor's power law by the bandwidth ratio.
  const CpuPerfModel& near = f < 0.5 ? lo : hi;
  const double ratio = bw_of(near) / bw;
  const FitResult power{near.range_a().a * ratio, near.range_a().b, 1.0};
  return CpuPerfModel(power, linear);
}

CpuPerfModel CpuPerfModel::fit(std::span<const double> sizes_mb,
                               std::span<const double> seconds,
                               Megabytes split_mb) {
  HOLAP_REQUIRE(sizes_mb.size() == seconds.size(),
                "fit requires equal-length samples");
  std::vector<double> ax, ay, bx, by;
  for (std::size_t i = 0; i < sizes_mb.size(); ++i) {
    if (sizes_mb[i] < split_mb.value()) {
      ax.push_back(sizes_mb[i]);
      ay.push_back(seconds[i]);
    } else {
      bx.push_back(sizes_mb[i]);
      by.push_back(seconds[i]);
    }
  }
  HOLAP_REQUIRE(ax.size() >= 2 || bx.size() >= 2,
                "fit requires at least two samples on one side of the split");
  FitResult power, linear;
  if (ax.size() >= 2) {
    power = fit_power_law(ax, ay);
  }
  if (bx.size() >= 2) {
    linear = fit_linear(bx, by);
    if (linear.a <= 0.0) {
      // Degenerate spread (e.g. narrow size range): fall back to a
      // through-origin slope, which is always positive for positive times.
      linear = fit_linear_origin(bx, by);
    }
  }
  if (ax.size() < 2) {
    // No Range-A coverage: continue the linear law as an exponent-1 power
    // law anchored to be continuous at the split.
    const double t_split = eval_linear(linear, split_mb.value());
    power = {t_split / split_mb.value(), 1.0, linear.r2};
  }
  if (bx.size() < 2) {
    // No Range-B coverage: continue the power law linearly, matching value
    // and slope at the split. A noisy sweep can fit a non-increasing power
    // law (negative exponent); fall back to the secant through the origin
    // so the model stays monotone.
    const double t_split = eval_power_law(power, split_mb.value());
    double slope =
        power.a * power.b * std::pow(split_mb.value(), power.b - 1.0);
    double intercept = t_split - slope * split_mb.value();
    if (slope <= 0.0) {
      slope = t_split / split_mb.value();
      intercept = 0.0;
    }
    linear = {slope, intercept, power.r2};
  }
  return CpuPerfModel(power, linear, split_mb);
}

}  // namespace holap
