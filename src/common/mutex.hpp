// Annotated mutex primitives for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so locking it
// through std::lock_guard is invisible to -Wthread-safety: a GUARDED_BY
// field would warn on every correct access. These thin wrappers put the
// attributes on the repo's own types — the same approach as Abseil's
// absl::Mutex — at zero behavioural cost: Mutex is a std::mutex, MutexLock
// is a scoped lock, CondVar is a std::condition_variable_any waiting on
// the Mutex itself (which is BasicLockable).
//
// Style rules the analysis enforces on users of these types:
//   - guard shared fields with HOLAP_GUARDED_BY(mutex_);
//   - wait in explicit `while (cond) cv.wait(mutex_);` loops rather than
//     predicate lambdas (a lambda body is analysed as its own function
//     and cannot see the caller's lock set).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace holap {

/// std::mutex with capability attributes. BasicLockable + Lockable, so it
/// also works directly as the lock argument of condition_variable_any.
class HOLAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HOLAP_ACQUIRE() { mu_.lock(); }
  void unlock() HOLAP_RELEASE() { mu_.unlock(); }
  bool try_lock() HOLAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over Mutex — the std::lock_guard of this unit. Code
/// that wants to unlock early (e.g. notify without the lock held) scopes
/// the MutexLock in a block instead; a partial-release member would not be
/// expressible to the analysis anyway.
class HOLAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HOLAP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HOLAP_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to holap::Mutex. Waits take the Mutex itself
/// and are annotated REQUIRES, so the analysis checks the caller holds it;
/// the unlock/relock inside std::condition_variable_any happens in a
/// system header and is exempt from the analysis by construction.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) HOLAP_REQUIRES(mu) { cv_.wait(mu); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      HOLAP_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace holap
