// Descriptive statistics and least-squares model fitting.
//
// The paper derives its performance models by fitting measured samples:
// a power law  y = a * x^b  below the 512 MB crossover (eqs. 5, 8), a linear
// function  y = a * x + b  above it (eqs. 6, 9), and a linear-through-origin
// dictionary model (eq. 17). This header provides exactly those fits —
// ordinary least squares for the linear forms and log–log OLS for the power
// law — plus the summary statistics the benches report.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace holap {

/// Summary of a sample: count, mean, standard deviation, extrema.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Compute summary statistics of `xs`. Returns a zeroed Summary when empty.
Summary summarize(std::span<const double> xs);

/// Percentile via linear interpolation between closest ranks.
/// `p` in [0, 100]. Throws InvalidArgument on empty input or p out of range.
double percentile(std::span<const double> xs, double p);

/// Result of a least-squares fit together with its goodness of fit.
struct FitResult {
  double a = 0.0;   ///< slope (linear) or scale (power law)
  double b = 0.0;   ///< intercept (linear) or exponent (power law)
  double r2 = 0.0;  ///< coefficient of determination in the fitted space
};

/// Ordinary least squares for y = a*x + b.
/// Requires at least two points with distinct x. Throws otherwise.
FitResult fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Least squares for y = a*x through the origin (the eq. 17 form).
/// Requires at least one point with x != 0.
FitResult fit_linear_origin(std::span<const double> xs,
                            std::span<const double> ys);

/// Log–log least squares for y = a * x^b  (the eq. 5/8 form).
/// All xs and ys must be strictly positive; requires two distinct x.
/// Returned r2 is computed in log space, where the fit is linear.
FitResult fit_power_law(std::span<const double> xs,
                        std::span<const double> ys);

/// Evaluate a power-law fit: a * x^b.
double eval_power_law(const FitResult& f, double x);

/// Evaluate a linear fit: a * x + b.
double eval_linear(const FitResult& f, double x);

/// Streaming accumulator for mean/variance (Welford) used by long DES runs
/// where storing every sample would be wasteful.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance; 0 when n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace holap
