// Deterministic random number generation.
//
// Every stochastic component of the system (workload generators, synthetic
// fact tables, arrival processes) derives its stream from a 64-bit seed via
// SplitMix64, so any experiment is reproducible from a single published
// seed. We deliberately avoid std::mt19937 seeding subtleties and
// distribution implementation divergence across standard libraries: all
// distributions here are implemented explicitly.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace holap {

/// SplitMix64: tiny, fast, and statistically strong for simulation use.
/// Used both as a generator and to expand one master seed into substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Derive an independent substream seed; call with distinct indices.
  std::uint64_t fork(std::uint64_t index) const {
    SplitMix64 f(state_ ^ (0x632be59bd9b4e019ull * (index + 1)));
    return f.next();
  }

  /// Uniform in [0, n). n must be > 0. Uses rejection to remove modulo bias.
  std::uint64_t uniform(std::uint64_t n) {
    HOLAP_REQUIRE(n > 0, "uniform(n) requires n > 0");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HOLAP_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1ull;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    return lo + static_cast<std::int64_t>(uniform(span));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    HOLAP_REQUIRE(lo <= hi, "uniform_real requires lo <= hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Exponential with the given rate (events per unit time); rate > 0.
  double exponential(double rate) {
    HOLAP_REQUIRE(rate > 0.0, "exponential requires rate > 0");
    double u = uniform01();
    if (u <= 0.0) u = std::numeric_limits<double>::min();  // avoid log(0)
    return -std::log(u) / rate;
  }

  /// True with probability p in [0, 1].
  bool bernoulli(double p) {
    HOLAP_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0,1]");
    return uniform01() < p;
  }

 private:
  std::uint64_t state_;
};

/// Zipf(s) sampler over {0, 1, ..., n-1} using inverse-CDF on a precomputed
/// table. Provides realistic skew for text columns (city/name frequency).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) {
    HOLAP_REQUIRE(n > 0, "ZipfSampler requires n > 0");
    HOLAP_REQUIRE(s >= 0.0, "ZipfSampler requires s >= 0");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  std::size_t operator()(SplitMix64& rng) const {
    const double u = rng.uniform01();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace holap
