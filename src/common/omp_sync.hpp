// TSan-visible synchronization edges around OpenMP parallel regions.
//
// libgomp's own synchronization is invisible to ThreadSanitizer: the
// runtime is not TSan-instrumented, so neither the implicit barrier at a
// parallel region's end nor the futex hand-off that wakes pooled worker
// threads at its start establishes a happens-before edge in TSan's model.
// Every region in this codebase is genuinely race-free under those
// barriers, but TSan would report each main-thread access before/after a
// region as racing with worker accesses inside it.
//
// OmpRegionSync re-derives the same edges with C++ atomics, which TSan
// models exactly:
//
//   OmpRegionSync sync;
//   sync.publish();                 // main, immediately before the region
//   #pragma omp parallel ...
//   {
//     sync.acquire_published();     // worker, first statement
//     ... region body ...
//     sync.arrive();                // worker, last statement
//   }
//   sync.complete();                // main, immediately after the region
//
// publish/acquire_published order everything main wrote before the fork
// with the workers' reads; arrive/complete order the workers' writes with
// main's reads after the join. `arrive` is a release RMW, so all arrivals
// form one release sequence and the single acquire in `complete`
// synchronizes with every worker. Transitivity also covers worker-to-
// worker edges across consecutive regions (worker A's region-1 writes
// happen-before main's complete(), which happens-before the next
// publish() and so region-2 reads).
//
// The invariant each call site must uphold: the OpenMP barrier already
// guarantees the ordering — these atomics only make it visible. They never
// substitute for missing synchronization (the loads don't spin; they rely
// on the barrier having completed). Cost: two uncontended atomic ops per
// thread per region, noise next to any cube scan.
// One edge cannot be expressed from user code: libgomp wakes *pooled*
// worker threads over a futex, so on every region after a pool thread's
// first, the compiler-written closure struct (the `._omp_fn` argument
// block on main's stack) is read by workers with no TSan-visible ordering
// after main wrote it. Under TSan we therefore hard-pause the OpenMP
// runtime after each region (`complete()`): the next region re-creates
// its threads with pthread_create, which TSan intercepts, restoring the
// fork edge. This is compiled only under `__SANITIZE_THREAD__` — regular
// builds keep the pool and pay nothing.
#pragma once

#include <atomic>

#if defined(__SANITIZE_THREAD__) && defined(_OPENMP)
#include <omp.h>
#endif

namespace holap {

class OmpRegionSync {
 public:
  /// Main thread, immediately before the parallel region: releases all
  /// prior writes to the workers.
  void publish() { epoch_.fetch_add(1, std::memory_order_release); }

  /// Worker, first statement inside the region: acquires main's writes.
  void acquire_published() const {
    (void)epoch_.load(std::memory_order_acquire);
  }

  /// Worker, last statement inside the region: releases its writes.
  void arrive() { epoch_.fetch_add(1, std::memory_order_release); }

  /// Main thread, immediately after the region: acquires every worker's
  /// writes (all `arrive` RMWs form one release sequence).
  void complete() const {
    (void)epoch_.load(std::memory_order_acquire);
#if defined(__SANITIZE_THREAD__) && defined(_OPENMP)
    // Tear down the worker pool so the next region's fork is a
    // TSan-visible pthread_create (see the header comment).
    (void)omp_pause_resource_all(omp_pause_hard);
#endif
  }

 private:
  std::atomic<int> epoch_{0};
};

}  // namespace holap
