// Size and time units used across the hybrid OLAP system.
//
// The paper's performance models (eqs. 3, 7, 10) are expressed in MB, so the
// canonical unit for model inputs is `Megabytes`, while storage code uses
// exact `std::size_t` byte counts. Conversions are centralised here so the
// 1024-vs-1000 choice is made exactly once: the paper uses binary prefixes
// (eq. 3 multiplies by 1024^2), and so do we.
//
// `Seconds`, `Megabytes` and `MbPerSec` are strong types, not aliases for
// `double`: each is a tagged wrapper exposing only the arithmetic that makes
// dimensional sense. Same-unit addition, scaling by dimensionless factors
// and same-unit ratios are defined on every quantity; the cross-unit
// operations (`Megabytes / MbPerSec -> Seconds`, `Megabytes / Seconds ->
// MbPerSec`, `MbPerSec * Seconds -> Megabytes`) are defined explicitly
// below. Anything else — `Seconds + Megabytes`, comparing a duration to a
// size — is a compile error, which turns the cost-model arithmetic of
// eqs. 5–18 from a naming convention into a checked property
// (tests/compile_fail guards this). All wrappers hold a plain `double` and
// every operation is the corresponding IEEE double operation, so retyped
// code is bit-identical to the old alias-based arithmetic.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>

namespace holap {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

namespace detail {

/// Dimensioned scalar: a `double` tagged with its unit. Only dimensionally
/// meaningful operations are defined — same-unit sum/difference, scaling by
/// a dimensionless factor, and the same-unit ratio (which is dimensionless).
template <class Tag>
struct Quantity {
  double v = 0.0;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : v(value) {}

  /// The raw magnitude, for I/O boundaries (formatting, JSON, fitting).
  constexpr double value() const { return v; }

  constexpr Quantity operator-() const { return Quantity{-v}; }
  constexpr Quantity& operator+=(Quantity o) {
    v += o.v;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v -= o.v;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v + b.v};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v - b.v};
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.v * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.v};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.v / s};
  }
  /// Ratio of like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v / b.v;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  /// Streaming prints the bare magnitude (tests, tables, JSON emitters).
  template <class Os>
  friend Os& operator<<(Os& os, Quantity q) {
    os << q.v;
    return os;
  }

  /// Magnitude; found by ADL so call sites read like std::abs.
  friend constexpr Quantity abs(Quantity a) {
    return Quantity{a.v < 0.0 ? -a.v : a.v};
  }
  friend constexpr Quantity min(Quantity a, Quantity b) {
    return b.v < a.v ? b : a;
  }
  friend constexpr Quantity max(Quantity a, Quantity b) {
    return a.v < b.v ? b : a;
  }
};

struct SecondsTag {};
struct MegabytesTag {};
struct MbPerSecTag {};
struct GbPerSecTag {};

}  // namespace detail

/// Time expressed in seconds; all performance models emit seconds.
using Seconds = detail::Quantity<detail::SecondsTag>;

/// Size expressed in binary megabytes, the unit of the paper's models.
using Megabytes = detail::Quantity<detail::MegabytesTag>;

/// Throughput/bandwidth in binary megabytes per second.
using MbPerSec = detail::Quantity<detail::MbPerSecTag>;

/// Bandwidth in binary gigabytes per second — the unit hardware specs and
/// the paper's prose use (§III-D's "1 GB per second"). Models compute in
/// MbPerSec; convert at the boundary with to_mb_per_sec/to_gb_per_sec.
using GbPerSec = detail::Quantity<detail::GbPerSecTag>;

// The cross-unit operations that make dimensional sense. Each is the plain
// IEEE double operation on the magnitudes.
constexpr Seconds operator/(Megabytes size, MbPerSec rate) {
  return Seconds{size.value() / rate.value()};
}
constexpr MbPerSec operator/(Megabytes size, Seconds time) {
  return MbPerSec{size.value() / time.value()};
}
constexpr Megabytes operator*(MbPerSec rate, Seconds time) {
  return Megabytes{rate.value() * time.value()};
}
constexpr Megabytes operator*(Seconds time, MbPerSec rate) {
  return Megabytes{time.value() * rate.value()};
}

// GB/s <-> MB/s: scaling by 1024 (a power of two) is exact in IEEE
// doubles, so round-tripping loses nothing.
constexpr MbPerSec to_mb_per_sec(GbPerSec rate) {
  return MbPerSec{rate.value() * 1024.0};
}
constexpr GbPerSec to_gb_per_sec(MbPerSec rate) {
  return GbPerSec{rate.value() / 1024.0};
}

constexpr Megabytes bytes_to_mb(std::size_t bytes) {
  return Megabytes{static_cast<double>(bytes) / static_cast<double>(kMiB)};
}

constexpr std::size_t mb_to_bytes(Megabytes mb) {
  return static_cast<std::size_t>(mb.value() * static_cast<double>(kMiB));
}

}  // namespace holap
