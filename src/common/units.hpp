// Size and time units used across the hybrid OLAP system.
//
// The paper's performance models (eqs. 3, 7, 10) are expressed in MB, so the
// canonical unit for model inputs is `Megabytes` (a double), while storage
// code uses exact `std::size_t` byte counts. Conversions are centralised here
// so the 1024-vs-1000 choice is made exactly once: the paper uses binary
// prefixes (eq. 3 multiplies by 1024^2), and so do we.
#pragma once

#include <cstddef>
#include <cstdint>

namespace holap {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

/// Size expressed in binary megabytes, the unit of the paper's models.
using Megabytes = double;

/// Time expressed in seconds; all performance models emit seconds.
using Seconds = double;

constexpr Megabytes bytes_to_mb(std::size_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

constexpr std::size_t mb_to_bytes(Megabytes mb) {
  return static_cast<std::size_t>(mb * static_cast<double>(kMiB));
}

}  // namespace holap
