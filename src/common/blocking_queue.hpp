// A minimal thread-safe FIFO queue for the native async executor.
//
// Multiple producers, multiple consumers, blocking pop with a closed
// state: after close(), producers are rejected and consumers drain the
// remaining items, then pop() returns nullopt. Intentionally tiny — the
// executor's queues carry a handful of in-flight jobs, so a mutex +
// condition variable is the right tool (no lock-free heroics).
//
// Overload robustness: a queue may be constructed with a capacity bound.
// Bounded queues give producers three disciplines — block until space
// (push), fail fast (try_push), or displace the least-useful queued item
// (push_displacing) — which is what lets the executor shed load instead
// of buffering an unbounded backlog past every deadline.
//
// The locking discipline is annotated for Clang Thread Safety Analysis
// (common/mutex.hpp): every field below is GUARDED_BY(mutex_) and a clang
// build fails if an access slips outside the lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.hpp"

namespace holap {

/// Outcome of a non-blocking enqueue attempt on a BlockingQueue.
enum class QueuePush : std::uint8_t {
  kAccepted,  ///< item enqueued
  kFull,      ///< bounded queue at capacity; item not enqueued
  kClosed,    ///< queue closed; item not enqueued
};

template <typename T>
class BlockingQueue {
 public:
  /// Unbounded queue (the legacy behaviour).
  BlockingQueue() = default;

  /// Bounded queue: at most `capacity` items buffered (0 = unbounded).
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueue an item; on a bounded queue, block until space is available.
  /// Returns false (dropping the item) when closed.
  bool push(T item) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && full_locked()) space_.wait(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Non-blocking enqueue. On kFull/kClosed, `item` is left untouched so
  /// the caller can resolve it (shed, reroute, report).
  QueuePush try_push(T& item) {
    {
      MutexLock lock(mutex_);
      if (closed_) return QueuePush::kClosed;
      if (full_locked()) return QueuePush::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return QueuePush::kAccepted;
  }

  /// Load-shedding enqueue for bounded queues: when full, the item that
  /// `worse(a, b)` ranks worst — among the queued items AND the arrival —
  /// makes room for the rest.
  ///
  /// Returns {kAccepted, nullopt}        pushed, nothing displaced;
  ///         {kAccepted, displaced}      pushed, a queued item evicted;
  ///         {kFull,     arrival}        the arrival itself ranked worst;
  ///         {kClosed,   arrival}        queue closed.
  /// The caller owns whatever comes back and must resolve it.
  ///
  /// Never blocks (unlike push(), there is no wait on `space_`), so
  /// callers may hold their own mutex across it — the ingest front-end
  /// holds its stats mutex here, which the blocking-under-lock analysis
  /// allows precisely because this path is wait-free. `worse` runs under
  /// the queue mutex and must not block or touch the queue.
  template <typename WorseThan>
  std::pair<QueuePush, std::optional<T>> push_displacing(T item,
                                                         WorseThan worse) {
    std::optional<T> displaced;
    {
      MutexLock lock(mutex_);
      if (closed_) return {QueuePush::kClosed, std::move(item)};
      if (full_locked()) {
        auto worst = items_.end();
        for (auto it = items_.begin(); it != items_.end(); ++it) {
          if (worst == items_.end() || worse(*it, *worst)) worst = it;
        }
        // Queued items win ties: the arrival must be strictly more
        // feasible than the worst queued item to displace it.
        if (worst == items_.end() || !worse(*worst, item)) {
          return {QueuePush::kFull, std::move(item)};
        }
        displaced = std::move(*worst);
        items_.erase(worst);
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return {QueuePush::kAccepted, std::move(displaced)};
  }

  /// Block until an item is available or the queue is closed and drained;
  /// nullopt means shutdown.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) ready_.wait(mutex_);
      item = take_locked();
    }
    if (item.has_value()) space_.notify_one();
    return item;
  }

  /// Timed pop: wait at most `timeout` for an item. nullopt means
  /// timeout, or closed-and-drained (distinguish via closed(): a closed
  /// queue hands out its buffered items first, so nullopt from a closed
  /// queue ALWAYS means empty). close() wakes parked callers immediately
  /// — a consumer never waits out its timeout against a dead queue.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      while (items_.empty()) {
        // Check closed BEFORE waiting: close() may have landed between
        // this call and the wake it notified, and drain-then-nullopt must
        // hold regardless of who observes the close first.
        if (closed_) break;
        if (ready_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
          // The timeout verdict only stands if the queue is STILL open
          // and empty: a push() or close() that raced the wake-up beat
          // the deadline under this mutex, so it wins.
          if (!closed_ && items_.empty()) return std::nullopt;
        }
      }
      item = take_locked();
    }
    if (item.has_value()) space_.notify_one();
    return item;
  }

  /// Atomically remove and return everything currently queued, leaving
  /// the queue open (consumers keep blocking, producers keep pushing).
  /// Wait-free — no condition wait — so callers may hold their own mutex
  /// across it: the async executor holds the scheduler mutex here while
  /// draining a repartitioned partition's intake.
  std::deque<T> drain() {
    std::deque<T> taken;
    {
      MutexLock lock(mutex_);
      taken.swap(items_);
    }
    space_.notify_all();
    return taken;
  }

  /// Reject future pushes and wake all waiting producers and consumers.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  /// Configured bound; 0 means unbounded.
  std::size_t capacity() const { return capacity_; }

 private:
  bool full_locked() const HOLAP_REQUIRES(mutex_) {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  /// Pops the head under the caller's lock; the caller notifies `space_`
  /// after unlocking (never signal with the lock held).
  std::optional<T> take_locked() HOLAP_REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable Mutex mutex_;
  CondVar ready_;
  CondVar space_;
  std::deque<T> items_ HOLAP_GUARDED_BY(mutex_);
  const std::size_t capacity_ = 0;  ///< 0 = unbounded (set at construction)
  bool closed_ HOLAP_GUARDED_BY(mutex_) = false;
};

}  // namespace holap
