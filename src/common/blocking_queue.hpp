// A minimal thread-safe FIFO queue for the native async executor.
//
// Multiple producers, multiple consumers, blocking pop with a closed
// state: after close(), producers are rejected and consumers drain the
// remaining items, then pop() returns nullopt. Intentionally tiny — the
// executor's queues carry a handful of in-flight jobs, so a mutex +
// condition variable is the right tool (no lock-free heroics).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace holap {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueue an item. Returns false (dropping the item) when closed.
  bool push(T item) {
    {
      const std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained;
  /// nullopt means shutdown.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Reject future pushes and wake all waiting consumers.
  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    const std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace holap
