// Error handling for the hybrid OLAP library.
//
// Public-API misuse (bad query shapes, out-of-range dimensions, capacity
// violations) throws `holap::Error` with a formatted message; internal
// invariants use HOLAP_ASSERT which also throws so tests can exercise
// failure paths without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace holap {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes arguments that violate an API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a resource capacity would be exceeded (e.g. GPU memory).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require_failure(const char* expr,
                                               const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace holap

/// Precondition check: throws holap::InvalidArgument when `expr` is false.
#define HOLAP_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::holap::detail::throw_require_failure(#expr, __FILE__, __LINE__, \
                                             (msg));                    \
    }                                                                   \
  } while (false)

/// Internal invariant check; same behaviour, different intent at call sites.
#define HOLAP_ASSERT(expr, msg) HOLAP_REQUIRE(expr, msg)
