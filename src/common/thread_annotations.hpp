// Clang Thread Safety Analysis annotation macros (no-ops elsewhere).
//
// The concurrent classes of the serving path — BlockingQueue, the async
// executor, the trace recorder's shards, FaultInjector — document their
// locking discipline with these macros, and a clang build compiles with
// -Wthread-safety (promoted to an error by HOLAP_THREAD_SAFETY_WERROR),
// so "field X is only touched under mutex M" is a checked property, not a
// comment. See Hutchins et al., "C/C++ Thread Safety Analysis" (the
// -Wthread-safety paper) for the capability model. GCC does not implement
// the attributes; there every macro expands to nothing and the same code
// compiles unchanged.
#pragma once

#if defined(__clang__)
#define HOLAP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HOLAP_THREAD_ANNOTATION__(x)
#endif

/// Class-level: instances of this type are capabilities (e.g. a mutex).
#define HOLAP_CAPABILITY(x) HOLAP_THREAD_ANNOTATION__(capability(x))

/// Class-level: RAII object acquiring a capability for its lifetime.
#define HOLAP_SCOPED_CAPABILITY HOLAP_THREAD_ANNOTATION__(scoped_lockable)

/// Member: may only be read/written while holding `x`.
#define HOLAP_GUARDED_BY(x) HOLAP_THREAD_ANNOTATION__(guarded_by(x))

/// Member (pointer): the pointee is guarded by `x`.
#define HOLAP_PT_GUARDED_BY(x) HOLAP_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function: acquires the listed capabilities exclusively.
#define HOLAP_ACQUIRE(...) \
  HOLAP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function: releases the listed capabilities.
#define HOLAP_RELEASE(...) \
  HOLAP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function: acquires the capability when returning `b`.
#define HOLAP_TRY_ACQUIRE(b, ...) \
  HOLAP_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Function: callable only while holding the listed capabilities.
#define HOLAP_REQUIRES(...) \
  HOLAP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function: must NOT be called while holding the listed capabilities.
#define HOLAP_EXCLUDES(...) HOLAP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function: returns a reference to the named capability.
#define HOLAP_RETURN_CAPABILITY(x) HOLAP_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking is correct but inexpressible.
#define HOLAP_NO_THREAD_SAFETY_ANALYSIS \
  HOLAP_THREAD_ANNOTATION__(no_thread_safety_analysis)
