// Aligned plain-text tables for the benchmark harnesses.
//
// Every table/figure reproduction prints its rows through this printer so
// all benches share one output convention (caption, header rule, aligned
// columns) and EXPERIMENTS.md can quote the output verbatim.
#pragma once

#include <string>
#include <vector>

namespace holap {

/// Builds and prints an aligned text table.
///
/// Usage:
///   TablePrinter t({"threads", "rate [Q/s]"});
///   t.add_row({"1", "12.0"});
///   t.print(std::cout, "Table 1: CPU-only processing rate");
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render to `os` with an optional caption line above the table.
  void print(std::ostream& os, const std::string& caption = "") const;

  /// Number formatting helpers used by the benches.
  static std::string fixed(double v, int precision);
  static std::string scientific(double v, int precision);
  /// Human-readable binary size: "512.0 MB", "4.0 KB", "32.0 GB".
  static std::string human_bytes(double bytes);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace holap
