// Wall-clock timing for native benchmarks and calibration runs.
#pragma once

#include <chrono>

#include "common/units.hpp"

namespace holap {

/// Monotonic wall-clock stopwatch. Construction starts it.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Typed elapsed time, for code on the unit-checked planes.
  Seconds elapsed() const { return Seconds{seconds()}; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace holap
