#include "common/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace holap {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  HOLAP_REQUIRE(!header_.empty(), "table requires at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  HOLAP_REQUIRE(cells.size() == header_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os, const std::string& caption) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!caption.empty()) os << caption << '\n';
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 2;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::scientific(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::human_bytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (v >= static_cast<double>(kGiB)) {
    v /= static_cast<double>(kGiB);
    unit = "GB";
  } else if (v >= static_cast<double>(kMiB)) {
    v /= static_cast<double>(kMiB);
    unit = "MB";
  } else if (v >= static_cast<double>(kKiB)) {
    v /= static_cast<double>(kKiB);
    unit = "KB";
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << v << ' ' << unit;
  return os.str();
}

}  // namespace holap
