#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace holap {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return s;
}

double percentile(std::span<const double> xs, double p) {
  HOLAP_REQUIRE(!xs.empty(), "percentile of empty sample");
  HOLAP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile requires p in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

namespace {

// r^2 of predictions `pred` against observations `ys`.
double r_squared(std::span<const double> ys, std::span<const double> pred) {
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
    ss_res += (ys[i] - pred[i]) * (ys[i] - pred[i]);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

void check_paired(std::span<const double> xs, std::span<const double> ys,
                  std::size_t min_points) {
  HOLAP_REQUIRE(xs.size() == ys.size(), "fit requires equal-length x and y");
  HOLAP_REQUIRE(xs.size() >= min_points, "fit requires more sample points");
}

}  // namespace

FitResult fit_linear(std::span<const double> xs, std::span<const double> ys) {
  check_paired(xs, ys, 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  HOLAP_REQUIRE(denom != 0.0, "fit_linear requires at least two distinct x");
  FitResult f;
  f.a = (n * sxy - sx * sy) / denom;
  f.b = (sy - f.a * sx) / n;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = f.a * xs[i] + f.b;
  f.r2 = r_squared(ys, pred);
  return f;
}

FitResult fit_linear_origin(std::span<const double> xs,
                            std::span<const double> ys) {
  check_paired(xs, ys, 1);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  HOLAP_REQUIRE(sxx != 0.0, "fit_linear_origin requires a nonzero x");
  FitResult f;
  f.a = sxy / sxx;
  f.b = 0.0;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = f.a * xs[i];
  f.r2 = r_squared(ys, pred);
  return f;
}

FitResult fit_power_law(std::span<const double> xs,
                        std::span<const double> ys) {
  check_paired(xs, ys, 2);
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    HOLAP_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                  "fit_power_law requires strictly positive samples");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const FitResult lin = fit_linear(lx, ly);
  FitResult f;
  f.a = std::exp(lin.b);  // scale = exp(intercept in log space)
  f.b = lin.a;            // exponent = slope in log space
  f.r2 = lin.r2;
  return f;
}

double eval_power_law(const FitResult& f, double x) {
  return f.a * std::pow(x, f.b);
}

double eval_linear(const FitResult& f, double x) { return f.a * x + f.b; }

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace holap
