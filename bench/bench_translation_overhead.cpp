// §IV text — the cost of text-to-integer translation on the GPU side.
// Published: GPU-only rate drops from ~69 to ~64 Q/s (~7%) when
// translation is enabled.
//
// The slowdown is a queueing effect: the single-threaded translation
// partition delays GPU starts; it is invisible while the translation
// queue's utilisation stays below the dispatch stage's, then grows
// sharply. We reproduce the published point (~7%) and sweep dictionary
// size and text share to expose the whole knee.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

double gpu_only_qps(double text_probability, double dict_multiplier) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = false;
  o.text_probability = text_probability;
  o.dict_length_multiplier = dict_multiplier;
  return simulate_qps(std::move(o), 3000, paper_sim_config());
}

}  // namespace

int main() {
  heading("Translation overhead (GPU-only)",
          "GPU accelerator only, CPU processing disabled; every text "
          "condition crosses the translation\npartition before its query "
          "can launch. Published: 69 Q/s -> 64 Q/s (~7% slowdown).");

  const double baseline = gpu_only_qps(0.0, 1350.0);
  const double with_text = gpu_only_qps(1.0, 1350.0);
  TablePrinter t({"configuration", "measured [Q/s]", "paper [Q/s]"});
  t.add_row({"without translation", TablePrinter::fixed(baseline, 1), "69"});
  t.add_row({"with translation", TablePrinter::fixed(with_text, 1), "64"});
  t.print(std::cout, "GPU-only processing rate (dictionaries ~2.2M entries)");
  note("measured slowdown: " +
       TablePrinter::fixed(100.0 * (1.0 - with_text / baseline), 1) +
       "% (paper ~7%)");

  note("");
  TablePrinter sweep({"dict entries (finest level)", "text share",
                      "rate [Q/s]", "slowdown vs no-text"});
  for (double mult : {250.0, 1000.0, 1350.0, 2000.0, 3000.0}) {
    for (double text : {0.5, 1.0}) {
      const double qps = gpu_only_qps(text, mult);
      sweep.add_row(
          {std::to_string(static_cast<long>(1600 * mult)),
           TablePrinter::fixed(text, 1), TablePrinter::fixed(qps, 1),
           TablePrinter::fixed(100.0 * (1.0 - qps / baseline), 1) + "%"});
    }
  }
  sweep.print(std::cout,
              "Sweep: translation cost vs dictionary size and text share");
  note("shape check: cost is ~0 until the translation partition saturates, "
       "then grows sharply —\nthe regime the paper's future-work "
       "'more sophisticated translation algorithm' targets.");
  return 0;
}
