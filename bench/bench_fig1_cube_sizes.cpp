// Figure 1 — cube resolution vs cube size (the pre-computed cube ladder,
// with the memory limit M and the CPU/GPU equilibrium G), and Figure 2 —
// the sub-cube "area of limited search" size estimation of eq. (3).
#include "bench_util.hpp"
#include "cube/dense_cube.hpp"
#include "perfmodel/cpu_model.hpp"
#include "perfmodel/gpu_model.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Figure 1",
          "Cube size vs resolution for the paper's 3-dim x 4-level model "
          "(cardinalities 8/40/400/1600\nper dimension, 8-byte cells) and "
          "where levels M and G fall for the modelled test system.");

  const auto dims = paper_model_dimensions();
  TablePrinter ladder({"level", "members/dim", "cells", "cube size",
                       "T_CPU|8T full scan", "role"});
  const CpuPerfModel cpu = CpuPerfModel::paper_8t();
  const GpuPerfModel gpu = GpuPerfModel::paper_c2070(14);
  for (int level = 0; level < 4; ++level) {
    const std::size_t bytes = cube_bytes(dims, level);
    const Megabytes mb = bytes_to_mb(bytes);
    const Seconds t_cpu = cpu.seconds(mb);
    // Level G: where a full-resolution CPU scan stops beating a whole-GPU
    // table scan (eq. 15 at full column fraction).
    std::string role;
    if (level == 3) role = "level M (largest cube main memory holds)";
    if (t_cpu > gpu.seconds(1.0) && role.empty()) {
      role = "beyond level G (GPU faster)";
    }
    ladder.add_row({std::to_string(level),
                    std::to_string(dims[0].level(level).cardinality),
                    std::to_string(bytes / 8), TablePrinter::human_bytes(
                        static_cast<double>(bytes)),
                    TablePrinter::fixed(t_cpu.value() * 1000.0, 2) + " ms",
                    role});
  }
  ladder.print(std::cout, "Figure 1: the pre-computed cube ladder");
  note("paper's §IV ladder: ~4KB, ~500KB, ~500MB, ~32GB — reproduced "
       "exactly by the 8/40/400/1600 hierarchy.");

  heading("Figure 2", "Sub-cube size estimation, eq. (3): SC = E * prod(t_i "
                      "- f_i), on the level-2 (~488 MB) cube.");
  TablePrinter sub({"query ranges (of 400/dim)", "sub-cube cells",
                    "sub-cube size", "share of cube"});
  struct Example {
    std::int32_t w0, w1, w2;
  };
  for (const auto& [w0, w1, w2] :
       {Example{400, 400, 400}, Example{100, 400, 400},
        Example{100, 100, 400}, Example{40, 40, 40}, Example{1, 1, 1}}) {
    Query q;
    q.conditions.push_back({0, 2, 0, w0 - 1, {}, {}});
    q.conditions.push_back({1, 2, 0, w1 - 1, {}, {}});
    q.conditions.push_back({2, 2, 0, w2 - 1, {}, {}});
    q.measures = {12};
    const std::size_t bytes = subcube_bytes(q, dims, 2, 8);
    sub.add_row({std::to_string(w0) + " x " + std::to_string(w1) + " x " +
                     std::to_string(w2),
                 std::to_string(bytes / 8),
                 TablePrinter::human_bytes(static_cast<double>(bytes)),
                 TablePrinter::fixed(100.0 * static_cast<double>(bytes) /
                                         static_cast<double>(
                                             cube_bytes(dims, 2)),
                                     2) +
                     "%"});
  }
  sub.print(std::cout, "Figure 2: area of limited search");
  return 0;
}
