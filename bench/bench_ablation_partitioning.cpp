// Ablation — why the {1,1,2,2,4,4} SM partitioning?
//
// §III-G: "This functional partitioning has been optimized for the Tesla
// C2070 with its 14 SM units." We sweep alternative partitionings of the
// same 14 SMs on the Table-3 hybrid workload, with and without the
// serialised-dispatch overhead (which equalises partitionings when it is
// the bottleneck — so the scheduling-level effect is shown at zero
// overhead too).
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

struct Config {
  const char* name;
  std::vector<int> partitions;
};

SimResult run(const std::vector<int>& partitions, Seconds dispatch) {
  ScenarioOptions o = table3_options(8);
  o.gpu_partitions = partitions;
  const PaperScenario s{std::move(o)};
  const auto queries = s.make_workload(3000);
  const auto policy = s.make_policy();
  SimConfig c = paper_sim_config();
  c.gpu_dispatch_overhead = dispatch;
  return run_simulation(*policy, queries, c);
}

}  // namespace

int main() {
  heading("Ablation: GPU partitioning",
          "Alternative partitionings of the C2070's 14 SMs, Table-3 hybrid "
          "workload, Figure-10 scheduler.");

  const std::vector<Config> configs = {
      {"paper {1,1,2,2,4,4}", {1, 1, 2, 2, 4, 4}},
      {"unpartitioned {14}", {14}},
      {"two halves {7,7}", {7, 7}},
      {"uniform {2x7}", {2, 2, 2, 2, 2, 2, 2}},
      {"all-singles {1x14}", {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
      {"coarse {4,4,4,2}", {4, 4, 4, 2}},
  };

  for (const Seconds dispatch : {Seconds{0.0145}, Seconds{0.0}}) {
    TablePrinter t({"partitioning", "rate [Q/s]", "deadline hit",
                    "p95 latency [ms]"});
    for (const auto& config : configs) {
      const SimResult r = run(config.partitions, dispatch);
      t.add_row({config.name, TablePrinter::fixed(r.throughput_qps, 1),
                 TablePrinter::fixed(100.0 * r.deadline_hit_rate, 1) + "%",
                 TablePrinter::fixed(r.p95_latency.value() * 1000.0, 1)});
    }
    t.print(std::cout,
            dispatch > Seconds{0.0}
                ? "With the 14.5 ms serialised dispatch (testbed regime)"
                : "With zero dispatch overhead (pure scheduling effect)");
    note("");
  }
  note("shape check: under the real launch-serialisation regime (top "
       "table), concurrent partitions\namortise the per-kernel dispatch "
       "cost and the paper's mixed ladder beats the unpartitioned\ndevice "
       "by ~30% — the configuration is justified by exactly the overhead "
       "the testbed had. With\nzero dispatch cost (bottom table) and "
       "service times scaling perfectly as 1/n_SM, a single\n"
       "work-conserving 14-SM queue is optimal and partitioning only adds "
       "head-of-line blocking —\npartitioning pays off for launch-overhead "
       "amortisation and isolation, not raw throughput.");
  return 0;
}
