// Table 3 — processing rate of the full hybrid system (CPU + GPU with six
// partitions and text-to-integer translation) over the Table-2 cube set.
// Published: 102 / 206 / 228 Q/s for sequential / 4T / 8T CPU partitions.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Table 3",
          "Full hybrid system: CPU processing partition (1/4/8 threads), "
          "CPU translation partition,\nsix GPU partitions {1,1,2,2,4,4} SMs "
          "on a simulated Tesla C2070 with a 4 GB fact table.\n"
          "Figure-10 scheduler, closed loop, 3000 queries.");

  const double paper[] = {102.0, 206.0, 228.0};
  const int threads[] = {1, 4, 8};
  const SimConfig config = paper_sim_config();

  TablePrinter t({"CPU threads", "measured [Q/s]", "paper [Q/s]", "ratio"});
  double rates[3];
  for (int i = 0; i < 3; ++i) {
    rates[i] = simulate_qps(table3_options(threads[i]), 3000, config);
    t.add_row({std::to_string(threads[i]), TablePrinter::fixed(rates[i], 1),
               TablePrinter::fixed(paper[i], 0),
               TablePrinter::fixed(rates[i] / paper[i], 2)});
  }
  t.print(std::cout, "Table 3: hybrid system processing rate");

  // Solo-resource reference points: the hybrid must beat both.
  SimConfig solo = config;
  ScenarioOptions gpu_only = table3_options(8);
  gpu_only.enable_cpu = false;
  const double gpu_rate = simulate_qps(std::move(gpu_only), 3000, solo);
  solo.closed_clients = 4;
  const double cpu_rate = simulate_qps(table2_options(8), 2000, solo);

  note("");
  note("reference: GPU-only = " + TablePrinter::fixed(gpu_rate, 1) +
       " Q/s, CPU-only (8T) = " + TablePrinter::fixed(cpu_rate, 1) +
       " Q/s — hybrid " + TablePrinter::fixed(rates[2], 1) +
       " Q/s beats both (paper: hybrid 228 > GPU-only ~64).");
  note("shape check: hybrid seq->8T speedup measured " +
       TablePrinter::fixed(rates[2] / rates[0], 2) + "x (paper 2.24x).");
  return 0;
}
