// Table 2 — processing rate of CPU-based OLAP cube processing once the
// ~32 GB cube joins the set {~32 GB, ~500 MB, ~500 KB, ~4 KB}.
// Published: 9 / 11 Q/s for 4 / 8 threads. (The sequential engine was not
// even measured here — this cube size is what the parallel engine enables.)
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Table 2",
          "CPU-only processing rate with the ~32 GB cube in the ladder.\n"
          "The 32 GB cube exists as a size in the virtual catalog — the "
          "methodology the paper itself\nuses for its system model (§IV).");

  const double paper[] = {9.0, 11.0};
  const int threads[] = {4, 8};
  SimConfig config = paper_sim_config();
  config.closed_clients = 4;

  TablePrinter t({"threads", "measured [Q/s]", "paper [Q/s]", "ratio"});
  double rates[2];
  for (int i = 0; i < 2; ++i) {
    rates[i] = simulate_qps(table2_options(threads[i]), 2000, config);
    t.add_row({std::to_string(threads[i]), TablePrinter::fixed(rates[i], 1),
               TablePrinter::fixed(paper[i], 0),
               TablePrinter::fixed(rates[i] / paper[i], 2)});
  }
  t.print(std::cout, "Table 2: CPU-only rate incl. the 32 GB cube");

  // The collapse relative to Table 1 is the point: the big cube dominates.
  SimConfig t1c = config;
  const double small_rate = simulate_qps(table1_options(8), 2000, t1c);
  note("");
  note("shape check: adding the 32 GB cube collapses the 8T rate from " +
       TablePrinter::fixed(small_rate, 0) + " to " +
       TablePrinter::fixed(rates[1], 1) + " Q/s (paper: 110 -> 11).");
  return 0;
}
