// Ablation — measured-vs-estimated feedback (§III-G, last paragraph).
//
// "The difference of these two times [is] used to update the value T_Q of
// the queue that was processing the query. This way the errors in the
// estimation do not significantly affect the scheduling algorithm."
// We miscalibrate the model two ways — an unmodeled fixed overhead and
// multiplicative noise — and compare feedback on vs off.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

SimResult run(bool feedback, std::vector<double> bias, double rate) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = false;  // GPU placement is where the clocks matter
  o.text_probability = 0.0;
  o.feedback = feedback;
  const PaperScenario s{std::move(o)};
  const auto queries = s.make_workload(3000);
  const auto p = s.make_policy();
  SimConfig c = paper_sim_config();
  c.arrival_rate = rate;
  c.gpu_dispatch_overhead = Seconds{0.0};
  c.gpu_queue_bias = std::move(bias);
  return run_simulation(*p, queries, c);
}

}  // namespace

int main() {
  heading("Ablation: estimation-error feedback",
          "Figure-10 scheduler with the completion-time feedback loop "
          "(§III-G) on vs off.\nMiscalibration is ASYMMETRIC: the 1- and "
          "2-SM partitions run 4x slower than their eq.-(14) model\n(e.g. "
          "the "
          "model was fitted on an idle device) — without feedback the "
          "scheduler keeps trusting\nthe stale model; with feedback the "
          "queue clocks learn the truth.");

  // Queues {1,1,2,2,4,4}: bias the four slow queues — the ones the
  // slowest-feasible-first rule loads first — by 4x.
  const std::vector<double> biased = {4.0, 4.0, 4.0, 4.0, 1.0, 1.0};
  const std::vector<double> unbiased = {};

  TablePrinter t({"model", "feedback", "rate [Q/s]", "deadline hit",
                  "p95 latency [ms]"});
  struct Case {
    const char* name;
    std::vector<double> bias;
  };
  for (const auto& c : {Case{"perfect", unbiased},
                        Case{"slow classes 4x slower than modeled", biased}}) {
    for (const bool fb : {true, false}) {
      const SimResult r = run(fb, c.bias, 220.0);
      t.add_row({c.name, fb ? "on" : "off",
                 TablePrinter::fixed(r.throughput_qps, 1),
                 TablePrinter::fixed(100.0 * r.deadline_hit_rate, 1) + "%",
                 TablePrinter::fixed(r.p95_latency.value() * 1000.0, 1)});
    }
  }
  t.print(std::cout, "Feedback ablation (GPU-only, 220 Q/s arrivals)");
  note("");
  note("shape check: with a perfect model feedback is a no-op; under "
       "asymmetric miscalibration the\nfeedback-corrected scheduler "
       "detects the slow class through completion times and steers work\n"
       "away from it — \"the errors in the estimation do not significantly "
       "affect the scheduling\nalgorithm\" (§III-G).");
  return 0;
}
