// Figure 3 — memory bandwidth of multithreaded OLAP cube processing for
// 1, 4 and 8 OpenMP threads across sub-cube sizes.
//
// Two series per thread count:
//   - NATIVE: the real aggregation kernel measured on THIS host (which has
//     1 physical core, so thread counts > 1 are oversubscribed and show no
//     speedup — printed for transparency, see DESIGN.md §2);
//   - PAPER MODEL: the bandwidth implied by the published eqs. (7)/(10)
//     and the 1 GB/s original engine, i.e. the dual-Xeon X5667 testbed.
#include "bench_util.hpp"
#include "perfmodel/calibrate.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Figure 3",
          "Memory bandwidth [GB/s] for multithreaded OLAP cube processing "
          "by the CPU.");

  const std::vector<Megabytes> sizes = {
      Megabytes{1},  Megabytes{2},  Megabytes{4},   Megabytes{8},
      Megabytes{16}, Megabytes{32}, Megabytes{64},  Megabytes{128},
      Megabytes{256}};
  const int thread_counts[] = {1, 4, 8};

  std::vector<CpuCalibrationResult> native;
  for (const int threads : thread_counts) {
    CpuCalibrationConfig config;
    config.sizes_mb = sizes;
    config.threads = threads == 1 ? 0 : threads;
    config.repetitions = 3;
    native.push_back(calibrate_cpu(config));
  }

  TablePrinter t({"sub-cube", "native 1T", "native 4T", "native 8T",
                  "paper 1T", "paper 4T", "paper 8T"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double mb = native[0].samples[i].x;
    t.add_row({TablePrinter::human_bytes(mb * 1024 * 1024),
               TablePrinter::fixed(native[0].bandwidth_gbps[i], 2),
               TablePrinter::fixed(native[1].bandwidth_gbps[i], 2),
               TablePrinter::fixed(native[2].bandwidth_gbps[i], 2),
               TablePrinter::fixed(
                   CpuPerfModel::paper_for_threads(1)
                       .gb_per_second(Megabytes{mb}).value(), 2),
               TablePrinter::fixed(
                   CpuPerfModel::paper_4t().gb_per_second(Megabytes{mb})
                       .value(), 2),
               TablePrinter::fixed(
                   CpuPerfModel::paper_8t().gb_per_second(Megabytes{mb})
                       .value(), 2)});
  }
  t.print(std::cout, "Figure 3: aggregation bandwidth [GB/s]");

  note("");
  note("shape check (paper series): 1T ~1 GB/s flat; 4T/8T rise to the "
       "15-25 GB/s plateau for cubes\n>= 128 MB (\"processing rates from "
       "15 to 20 GB per second for cube sized 128 MB and more\", §III-D).");
  note("native series: this host has 1 physical core, so all native "
       "thread counts converge to the\nsingle-core streaming bandwidth — "
       "the engine is correct under oversubscription, and the\nparallel "
       "speedup shape comes from the published model (see DESIGN.md §2).");
  return 0;
}
