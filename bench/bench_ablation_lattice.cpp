// Ablation — smallest-parent lattice materialization vs the naive
// algorithm (§II-A/B).
//
// The paper's cube substrate descends from Gray et al.'s data cube and the
// smallest-parent / minimum-size-spanning-tree line of work [5, 10, 20].
// This bench plans the full 125-view group-by lattice of the §IV model
// (3 dims x 4 levels + collapsed) both ways, reports the planned scan
// volumes, and then actually executes both plans on a real fact table to
// confirm the planned ratio shows up in wall time.
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "cube/view_cube.hpp"
#include "relational/generator.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Ablation: lattice materialization",
          "Planning and executing the full group-by lattice with the "
          "smallest-parent method vs naive\nper-view fact-table scans.");

  // Planning at paper scale (no allocation: the plan is pure arithmetic).
  const auto paper_dims = paper_model_dimensions();
  const auto paper_views = enumerate_lattice(paper_dims);
  const std::size_t paper_rows = 50'000'000;  // the ~4 GB fact table
  const auto smart = plan_smallest_parent(paper_dims, paper_views,
                                          paper_rows);
  const auto naive = plan_naive(paper_dims, paper_views, paper_rows);
  TablePrinter plan_table({"plan", "views", "cells scanned",
                           "vs naive"});
  plan_table.add_row({"naive (every view scans the fact table)",
                      std::to_string(naive.steps.size()),
                      std::to_string(naive.total_cost), "1.00x"});
  plan_table.add_row(
      {"smallest parent", std::to_string(smart.steps.size()),
       std::to_string(smart.total_cost),
       TablePrinter::fixed(static_cast<double>(naive.total_cost) /
                               static_cast<double>(smart.total_cost),
                           1) +
           "x less"});
  plan_table.print(std::cout,
                   "Planned scan volume, paper-scale lattice (125 views, "
                   "50M-row fact table)");

  note("");
  TablePrinter tree({"view (coarsest ten)", "cells", "parent",
                     "scan cost"});
  for (std::size_t shown = 0, i = smart.steps.size(); i-- > 0 && shown < 10;
       ++shown) {
    const auto& step = smart.steps[i];
    tree.add_row(
        {step.view.to_string(paper_dims),
         std::to_string(step.view.cells(paper_dims)),
         step.parent ? smart.steps[*step.parent].view.to_string(paper_dims)
                     : std::string("fact table"),
         std::to_string(step.scan_cost)});
  }
  tree.print(std::cout, "Smallest-parent tree (excerpt)");

  // Execution at native scale: tiny dims, real data, both plans.
  note("");
  GeneratorConfig gen;
  gen.rows = 200'000;
  gen.seed = 3;
  const FactTable table = generate_fact_table(tiny_model_dimensions(), gen);
  const auto dims = tiny_model_dimensions();
  const auto views = enumerate_lattice(dims);
  const auto smart_small =
      plan_smallest_parent(dims, views, table.row_count());
  const auto naive_small = plan_naive(dims, views, table.row_count());

  WallTimer smart_timer;
  const auto smart_cubes =
      execute_plan(table, smart_small, CubeBasis::kSum, 12);
  const double smart_s = smart_timer.seconds();
  WallTimer naive_timer;
  const auto naive_cubes =
      execute_plan(table, naive_small, CubeBasis::kSum, 12);
  const double naive_s = naive_timer.seconds();

  // Cross-check: both materialisations agree on every view's grand total.
  for (std::size_t i = 0; i < smart_cubes.size(); ++i) {
    double naive_total = 0.0;
    for (const auto& cube : naive_cubes) {
      if (cube.view() == smart_cubes[i].view()) {
        naive_total = cube.combined_total();
      }
    }
    if (std::abs(smart_cubes[i].combined_total() - naive_total) > 1e-3) {
      note("PLAN EXECUTION MISMATCH!");
      return 1;
    }
  }

  TablePrinter exec({"plan", "wall time [ms]", "speedup"});
  exec.add_row({"naive", TablePrinter::fixed(naive_s * 1e3, 1), "1.0x"});
  exec.add_row({"smallest parent", TablePrinter::fixed(smart_s * 1e3, 1),
                TablePrinter::fixed(naive_s / smart_s, 1) + "x"});
  exec.print(std::cout,
             "Executing the full 125-view lattice natively (200k rows, "
             "tiny hierarchy)");
  note("shape check: almost all of the lattice is derivable from small "
       "parents, so the smallest-parent\ntree replaces ~124 fact-table "
       "scans with array roll-ups — the paper's cube ladder is the "
       "uniform-\nlevel slice of exactly this plan.");
  return 0;
}
