// Ablation — per-column dictionaries vs one global dictionary (§III-F).
//
// "The implementation uses a smaller dictionary for each text column …
// rather than having one large dictionary for all text columns. This
// approach allows more precise time estimation … as smaller dictionaries
// have smaller time variation of search as well."
//
// Two effects are measured: (1) raw translation cost — a global
// dictionary makes EVERY search scan the union; (2) throughput of the
// GPU-only system under each design.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

/// TranslationWorkModel for the single-global-dictionary design: every
/// search scans the union of all text columns' dictionaries.
class GlobalDictionaryModel final : public TranslationWorkModel {
 public:
  GlobalDictionaryModel(TableSchema schema, double multiplier)
      : schema_(std::move(schema)) {
    for (const int col : schema_.text_columns()) {
      const ColumnSpec& spec = schema_.column(col);
      const Dimension& dim =
          schema_.dimensions()[static_cast<std::size_t>(spec.dim)];
      total_ += static_cast<std::size_t>(
          dim.level(spec.level).cardinality * multiplier);
    }
  }

  std::vector<std::size_t> dictionary_lengths(
      const Query& q) const override {
    std::vector<std::size_t> lengths;
    for (const auto& c : q.conditions) {
      if (!c.is_text()) continue;
      for (std::size_t i = 0; i < c.text_values.size(); ++i) {
        lengths.push_back(total_);
      }
    }
    return lengths;
  }

 private:
  TableSchema schema_;
  std::size_t total_ = 0;
};

SimResult run(bool global_dict, double multiplier) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = false;
  o.text_probability = 1.0;
  o.dict_length_multiplier = multiplier;
  const PaperScenario s{o};
  const auto queries = s.make_workload(2500);

  const GlobalDictionaryModel global(s.schema(), multiplier);
  SchedulerConfig config;
  config.gpu_partitions = o.gpu_partitions;
  config.deadline = o.deadline;
  config.enable_cpu = false;
  std::unique_ptr<SchedulerPolicy> policy;
  if (global_dict) {
    policy = make_policy(
        "figure10", config,
        make_paper_estimator(o.gpu_partitions, 8, s.gpu_table_mb(),
                             s.gpu_total_columns(), &s.catalog(), &global));
  } else {
    policy = s.make_policy();
  }
  return run_simulation(*policy, queries, paper_sim_config());
}

}  // namespace

int main() {
  heading("Ablation: per-column vs global dictionary",
          "GPU-only system, all text-capable conditions arrive as strings. "
          "The global design makes every\nsearch scan the union of the "
          "per-column dictionaries (here 2 text columns).");

  TablePrinter t({"dict entries/column", "per-column [Q/s]",
                  "global [Q/s]", "global penalty"});
  for (const double mult : {250.0, 675.0, 1350.0}) {
    const SimResult per_column = run(false, mult);
    const SimResult global = run(true, mult);
    t.add_row({std::to_string(static_cast<long>(1600 * mult)),
               TablePrinter::fixed(per_column.throughput_qps, 1),
               TablePrinter::fixed(global.throughput_qps, 1),
               TablePrinter::fixed(
                   100.0 * (1.0 - global.throughput_qps /
                                      per_column.throughput_qps),
                   1) +
                   "%"});
  }
  t.print(std::cout, "Per-column vs global dictionary throughput");
  note("");
  note("shape check: the global design doubles every search's scan length "
       "(2 text columns), halving\nthe translation partition's capacity — "
       "it saturates at half the dictionary size. The paper's\nper-column "
       "design also keeps each search's cost exactly predictable "
       "(P_DICT of the one column),\nwhich is what the scheduler's "
       "eq.-(18) estimate relies on.");
  return 0;
}
