// Ablation — dense vs chunked (chunk-offset compressed) cube storage.
//
// §II-B credits Zhao, Deshpande & Naughton [20] with the chunked array +
// chunk-offset compression design this library implements in
// cube/chunked_cube.hpp. The trade is memory footprint vs scan regularity:
// fine-resolution cubes are extremely sparse (a 4 GB fact table fills at
// most ~1.2% of the 32 GB cube's cells), so compression decides whether a
// level is materialisable at all; dense storage streams faster when fill
// is high. This bench sweeps the fill factor.
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "cube/builder.hpp"
#include "cube/chunked_cube.hpp"
#include "relational/generator.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Ablation: cube storage",
          "Dense vs chunked/compressed storage of the finest-level cube "
          "(16^3 cells here; chunk side 4,\n40% compression threshold) as "
          "the fact table grows — fill factor rises with rows.");

  const auto dims = tiny_model_dimensions();
  TablePrinter t({"rows", "fill", "dense bytes", "chunked bytes",
                  "compression", "sparse chunks", "dense scan [us]",
                  "chunked scan [us]"});
  for (const std::size_t rows : {50, 200, 1'000, 5'000, 50'000}) {
    GeneratorConfig gen;
    gen.rows = rows;
    gen.seed = 11;
    const FactTable table = generate_fact_table(dims, gen);
    const DenseCube dense = build_cube(table, 3, CubeBasis::kSum, 12, 0);
    std::size_t filled = 0;
    for (const double c : dense.cells()) filled += c != 0.0;
    const ChunkedCube chunked = ChunkedCube::from_dense(dense, 4);

    CubeRegion full;
    for (int d = 0; d < 3; ++d) {
      full.dims.push_back(
          {{0, static_cast<std::int32_t>(dense.cardinality(d)) - 1}});
    }
    constexpr int kReps = 2000;
    WallTimer dense_timer;
    double sink = 0.0;
    for (int r = 0; r < kReps; ++r) {
      sink += aggregate_region(dense, full, 0).value;
    }
    const double dense_us = dense_timer.seconds() / kReps * 1e6;
    WallTimer chunked_timer;
    for (int r = 0; r < kReps; ++r) {
      sink -= chunked.aggregate(full).value;
    }
    const double chunked_us = chunked_timer.seconds() / kReps * 1e6;
    if (std::abs(sink) > 1e-3) return 1;  // answers must agree exactly

    t.add_row(
        {std::to_string(rows),
         TablePrinter::fixed(100.0 * static_cast<double>(filled) /
                                 static_cast<double>(dense.cell_count()),
                             1) +
             "%",
         std::to_string(dense.size_bytes()),
         std::to_string(chunked.size_bytes()),
         TablePrinter::fixed(static_cast<double>(dense.size_bytes()) /
                                 static_cast<double>(chunked.size_bytes()),
                             2) +
             "x",
         std::to_string(chunked.sparse_chunk_count()) + "/" +
             std::to_string(chunked.chunk_count()),
         TablePrinter::fixed(dense_us, 1),
         TablePrinter::fixed(chunked_us, 1)});
  }
  t.print(std::cout, "Dense vs chunk-offset-compressed cube");

  note("");
  note("capacity view: the paper-scale 32 GB level-3 cube holds 4.096e9 "
       "cells; a 4 GB fact table\n(50M rows) fills at most 50M of them "
       "(1.2%), so chunk-offset compression stores it in\n<= ~0.8 GB — the "
       "difference between \"needs the GPU\" and \"fits next to the other "
       "cubes\".");
  note("shape check: compression wins memory at low fill and approaches "
       "parity as fill rises past the\n40% threshold; dense scan stays "
       "faster per logical cell (regular streaming), which is why [20]\n"
       "keeps dense chunks dense.");
  return 0;
}
