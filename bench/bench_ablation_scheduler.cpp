// Ablation — the Figure-10 policy against MET, MCT and round-robin across
// arrival rates, plus the load-blindness stress case (GPU-only, no
// dispatch ceiling) where MET's single-favourite-queue behaviour breaks.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

SimResult run(const std::string& policy, double rate) {
  const PaperScenario s{table3_options(8)};
  const auto queries = s.make_workload(2500);
  const auto p = s.make_policy(policy);
  SimConfig c = paper_sim_config();
  c.arrival_rate = rate;
  return run_simulation(*p, queries, c);
}

SimResult run_gpu_stress(const std::string& policy) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = false;
  o.text_probability = 0.0;
  const PaperScenario s{std::move(o)};
  const auto queries = s.make_workload(2500);
  const auto p = s.make_policy(policy);
  SimConfig c = paper_sim_config();
  c.arrival_rate = 250.0;
  c.gpu_dispatch_overhead = Seconds{0.0};
  return run_simulation(*p, queries, c);
}

}  // namespace

int main() {
  heading("Ablation: scheduling policy",
          "Figure 10 vs MET [15], MCT [2] and round-robin on the Table-3 "
          "hybrid workload (open-loop arrivals).");

  const char* policies[] = {"figure10", "MCT", "MET", "round-robin"};
  for (const double rate : {60.0, 120.0, 180.0}) {
    TablePrinter t({"policy", "rate [Q/s]", "deadline hit",
                    "p95 latency [ms]", "cpu/gpu split"});
    for (const char* policy : policies) {
      const SimResult r = run(policy, rate);
      t.add_row({policy, TablePrinter::fixed(r.throughput_qps, 1),
                 TablePrinter::fixed(100.0 * r.deadline_hit_rate, 1) + "%",
                 TablePrinter::fixed(r.p95_latency.value() * 1000.0, 1),
                 std::to_string(r.cpu_queries) + "/" +
                     std::to_string(r.gpu_queries)});
    }
    t.print(std::cout, "Arrival rate " + TablePrinter::fixed(rate, 0) +
                           " Q/s");
    note("");
  }

  TablePrinter stress({"policy", "rate [Q/s]", "deadline hit",
                       "p95 latency [ms]"});
  for (const char* policy : policies) {
    const SimResult r = run_gpu_stress(policy);
    stress.add_row({policy, TablePrinter::fixed(r.throughput_qps, 1),
                    TablePrinter::fixed(100.0 * r.deadline_hit_rate, 1) +
                        "%",
                    TablePrinter::fixed(r.p95_latency.value() * 1000.0, 1)});
  }
  stress.print(std::cout,
               "Load-blindness stress: GPU-only, 250 Q/s arrivals, no "
               "dispatch ceiling");
  note("");
  note("shape check: the estimation-based policies (figure10/MCT/MET) tie "
       "at low load and crush\nround-robin everywhere; under GPU stress "
       "MET collapses to one queue's capacity while\nfigure10 spreads "
       "across the whole partition ladder.");
  return 0;
}
