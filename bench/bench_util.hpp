// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench prints (a) the experiment's configuration, (b) a paper-style
// table of our measured/simulated numbers next to the published ones, and
// (c) a one-line shape verdict. EXPERIMENTS.md quotes this output.
#pragma once

#include <iostream>
#include <string>

#include "common/table_printer.hpp"
#include "sim/scenario.hpp"

namespace holap::bench {

inline void heading(const std::string& title, const std::string& what) {
  std::cout << "\n=== " << title << " ===\n" << what << "\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// The calibrated simulation overheads (see SimConfig doc comments and
/// DESIGN.md §2): 5 ms CPU-side per-query cost, 14.5 ms serialised GPU
/// dispatch (tuned so the GPU-only rate reproduces the published ~69 Q/s).
inline SimConfig paper_sim_config() {
  SimConfig config;
  config.closed_clients = 16;
  config.cpu_overhead = Seconds{0.005};
  config.gpu_dispatch_overhead = Seconds{0.0145};
  return config;
}

/// Table-1 scenario: CPU only, cubes {~4 KB, ~500 KB, ~512 MB}, workload
/// restricted to resolutions those cubes cover.
inline ScenarioOptions table1_options(int threads) {
  ScenarioOptions o;
  o.enable_gpu = false;
  o.gpu_partitions.clear();
  o.cube_levels = {0, 1, 2};
  o.cpu_threads = threads;
  o.level_weights = {0.1, 0.2, 0.7, 0.0};
  o.mean_selectivity = 0.5;
  o.text_probability = 0.0;
  return o;
}

/// Table-2 scenario: the ~32 GB cube joins the ladder and the workload
/// gains level-3 (finest-resolution) queries.
inline ScenarioOptions table2_options(int threads) {
  ScenarioOptions o = table1_options(threads);
  o.cube_levels = {0, 1, 2, 3};
  o.level_weights = {0.2, 0.25, 0.35, 0.2};
  return o;
}

/// Table-3 scenario: the full hybrid system over the Table-2 workload with
/// text parameters enabled (half the text-capable conditions arrive as
/// strings).
inline ScenarioOptions table3_options(int threads) {
  ScenarioOptions o = table2_options(threads);
  o.enable_gpu = true;
  o.gpu_partitions = {1, 1, 2, 2, 4, 4};
  o.text_probability = 0.5;
  return o;
}

inline double simulate_qps(ScenarioOptions options, std::size_t queries,
                           const SimConfig& config,
                           const std::string& policy = "figure10") {
  const PaperScenario scenario{std::move(options)};
  const auto workload = scenario.make_workload(queries);
  const auto p = scenario.make_policy(policy);
  return run_simulation(*p, workload, config).throughput_qps;
}

}  // namespace holap::bench
