// Figure 8 — Tesla C2070 query processing time for 1-, 2- and 4-SM
// partitions as the number of searched columns varies (4 GB table).
//
// Three layers are exercised:
//   1. the published performance functions (eq. 14) across C/C_TOT;
//   2. the functional GPU simulator end-to-end: real queries with growing
//      column counts against a device-resident table, whose modeled times
//      must land on the same lines;
//   3. a re-fit of the (fraction, time) samples recovering eq. 14's
//      coefficients — the calibration loop a new device would use.
#include "bench_util.hpp"
#include "gpusim/gpu_device.hpp"
#include "relational/generator.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Figure 8",
          "GPU partition query time vs searched-column share, 4 GB table, "
          "partitions of 1/2/4 SMs.");

  // Functional device with a small real table; timing is scaled to the
  // paper's 4 GB via the model, so we drive the 4 GB numbers directly
  // from the published functions and use the device for agreement checks.
  GpuDevice device(DeviceSpec::tesla_c2070());
  device.upload_table(generate_paper_model_table(20'000, 11));
  device.set_partitions({1, 2, 4});

  const int total_cols = 16;
  TablePrinter t({"columns (of 16)", "C/C_TOT", "1 SM [ms]", "2 SM [ms]",
                  "4 SM [ms]", "14 SM [ms]"});
  std::vector<double> fractions;
  std::vector<std::vector<double>> times(3);
  for (int cols = 2; cols <= total_cols; cols += 2) {
    const double f = static_cast<double>(cols) / total_cols;
    fractions.push_back(f);
    std::vector<std::string> row{std::to_string(cols),
                                 TablePrinter::fixed(f, 3)};
    int i = 0;
    for (const int sms : {1, 2, 4}) {
      const double s = GpuPerfModel::paper_c2070(sms).seconds(f).value();
      times[i++].push_back(s);
      row.push_back(TablePrinter::fixed(s * 1000.0, 2));
    }
    row.push_back(
        TablePrinter::fixed(
            GpuPerfModel::paper_c2070(14).seconds(f).value() * 1000.0,
                            2));
    t.add_row(std::move(row));
  }
  t.print(std::cout, "Figure 8: partition query time (published model, "
                     "4 GB table)");

  note("");
  int i = 0;
  for (const int sms : {1, 2, 4}) {
    const GpuPerfModel fit = GpuPerfModel::fit(fractions, times[i++]);
    const GpuPerfModel paper = GpuPerfModel::paper_c2070(sms);
    note("re-fit " + std::to_string(sms) + " SM: a=" +
         TablePrinter::scientific(fit.a(), 3) + " b=" +
         TablePrinter::scientific(fit.b(), 3) + "  (paper a=" +
         TablePrinter::scientific(paper.a(), 3) + " b=" +
         TablePrinter::scientific(paper.b(), 3) + ")");
  }

  // Functional agreement: execution answers are identical across
  // partitions and modeled times scale with the partition size.
  Query q;
  q.conditions.push_back({0, 2, 0, 99, {}, {}});
  q.conditions.push_back({1, 1, 0, 19, {}, {}});
  q.measures = {12, 13};
  const GpuExecution e1 = device.execute(0, q);
  const GpuExecution e2 = device.execute(1, q);
  const GpuExecution e4 = device.execute(2, q);
  note("");
  note("functional check (real scan on device-resident table): identical "
       "answers across partitions = " +
       std::string(e1.answer.value == e2.answer.value &&
                           e2.answer.value == e4.answer.value
                       ? "yes"
                       : "NO") +
       "; modeled time 1SM/4SM = " +
       TablePrinter::fixed(e1.modeled_seconds / e4.modeled_seconds, 2) +
       "x (paper ~3.9x at this column share).");
  note("shape check: time is linear in column share; partition speed "
       "scales ~1/n_SM (eq. 14's published\nconstants follow that law to "
       "within 3%).");
  return 0;
}
