// Sustained-load ingestion: batch-aggregated sharded front-end vs. the
// serial dispatcher.
//
// The serial baseline is AsyncHybridExecutor::submit — one scheduler-lock
// acquisition, one clock-ledger commit and one PER-PARAMETER linear-scan
// dictionary translation (§III-F's baseline algorithm) for every query.
// The batched path is ShardedIngestFrontEnd -> admit(): producers enqueue
// into lock-free-of-the-scheduler admission shards, aggregators flush
// capacity/timeout batches, the Figure-10 choose() runs over each batch
// under ONE lock acquisition and ONE ledger commit, and text parameters
// translate with one dictionary pass per distinct column per batch.
//
// Both paths receive the IDENTICAL workload from the same number of
// producer threads submitting flat out (open loop, no pacing), so the
// admitted-Q/s and latency comparison is apples to apples: queries whose
// translation dominates their execution — a large city dictionary, an
// IN-list of city names per query, a cheap rollup answer — i.e. exactly
// the regime the paper's text-to-integer translation section worries
// about. The acceptance bar: >= 10x admitted Q/s at equal-or-better p99,
// recorded in BENCH_sustained_ingest.json next to the binary.
#include <algorithm>
#include <fstream>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "olap/async_executor.hpp"
#include "olap/hybrid_system.hpp"
#include "olap/ingest.hpp"
#include "relational/generator.hpp"
#include "sched/scheduler.hpp"

namespace holap::bench {
namespace {

constexpr std::size_t kRows = 200'000;
constexpr std::size_t kQueries = 1024;
constexpr int kProducers = 4;
constexpr int kTextValuesPerQuery = 64;

/// Translation-heavy star schema: a 50k-member city level makes the
/// linear-scan dictionary expensive, while the tiny time/product ladders
/// keep the finest cube (8 x 50000 x 8 cells) small enough that answering
/// a translated query is cheap — the regime where admission amortisation,
/// not execution, decides throughput.
std::vector<Dimension> bench_dimensions() {
  return {
      Dimension("time", {{"year", 2}, {"quarter", 4}, {"month", 8}}),
      Dimension("geography", {{"region", 5}, {"state", 100}, {"city", 50000}}),
      Dimension("product", {{"family", 2}, {"category", 4}, {"brand", 8}}),
  };
}

FactTable make_table() {
  GeneratorConfig gen;
  gen.rows = kRows;
  gen.seed = 7;
  gen.measures = 2;
  gen.text_levels = {{1, 2}};  // the city column arrives as strings
  return generate_fact_table(bench_dimensions(), gen);
}

HybridSystemConfig system_config() {
  HybridSystemConfig cfg;
  cfg.enable_gpu = false;  // CPU-only deployment: admission is the choke
  cfg.cpu_threads = 1;
  cfg.cube_levels = {2};
  cfg.deadline = Seconds{30.0};  // nothing sheds; capacity is the metric
  cfg.translation = HybridSystemConfig::TranslationAlgorithm::kLinearScan;
  return cfg;
}

/// Same query stream for both paths: a city IN-list (text, needs
/// translation) plus a narrow time slice, answered from the level-2 cube.
std::vector<Query> make_workload(const HybridOlapSystem& system) {
  const int city_col = system.schema().dimension_column(1, 2);
  const Dictionary& dict = system.dictionaries().for_column(city_col);
  SplitMix64 rng(2026);
  std::vector<Query> out;
  out.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    Query q;
    Condition cities;
    cities.dim = 1;
    cities.level = 2;
    for (int v = 0; v < kTextValuesPerQuery; ++v) {
      const auto code = static_cast<std::int32_t>(
          rng.uniform_int(0, static_cast<int>(dict.size()) - 1));
      cities.text_values.push_back(dict.decode(code));
    }
    q.conditions.push_back(std::move(cities));
    q.conditions.push_back({0, 0, 0, 0, {}, {}});  // one year
    q.measures = {9};  // first measure column (after 3 dims x 3 levels)
    out.push_back(std::move(q));
  }
  return out;
}

struct PathResult {
  std::string name;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t completed = 0;
  double makespan_s = 0.0;
};

/// Drives `submit` from kProducers threads flat out, waits for every
/// future in submission order, and reports admitted throughput and the
/// submit->get latency distribution. The in-order get is the same
/// consistent upper bound for both paths.
PathResult drive(const std::string& name, const std::vector<Query>& workload,
                 const std::function<std::future<ExecutionReport>(Query)>&
                     submit) {
  std::vector<double> latencies(workload.size(), 0.0);
  std::vector<std::size_t> completed_per(kProducers, 0);
  std::vector<std::thread> producers;
  const WallTimer wall;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      std::vector<std::pair<std::size_t, std::future<ExecutionReport>>> mine;
      std::vector<double> submitted_at;
      for (std::size_t i = static_cast<std::size_t>(t); i < workload.size();
           i += kProducers) {
        submitted_at.push_back(wall.seconds());
        mine.emplace_back(i, submit(workload[i]));
      }
      for (std::size_t k = 0; k < mine.size(); ++k) {
        const ExecutionReport report = mine[k].second.get();
        latencies[mine[k].first] = wall.seconds() - submitted_at[k];
        if (report.outcome == ExecutionOutcome::kCompleted ||
            report.outcome == ExecutionOutcome::kFailedOver) {
          ++completed_per[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& p : producers) p.join();

  PathResult r;
  r.name = name;
  r.makespan_s = wall.seconds();
  for (const std::size_t c : completed_per) r.completed += c;
  r.qps = static_cast<double>(r.completed) / r.makespan_s;
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[idx] * 1e3;
  };
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  return r;
}

}  // namespace

int run() {
  heading("Sustained ingest: sharded batch aggregation vs serial dispatch",
          "Identical open-loop storm from " + std::to_string(kProducers) +
              " producers, " + std::to_string(kQueries) +
              " translation-heavy queries (city IN-lists over a ~50k-entry "
              "dictionary, linear-scan baseline), CPU-only system.");

  const FactTable table = make_table();

  // Fresh system (fresh scheduler ledger, fresh workers) per path.
  PathResult serial;
  {
    HybridOlapSystem system(table, system_config());
    const int city_col = system.schema().dimension_column(1, 2);
    note("fact table: " + std::to_string(kRows) + " rows; city dictionary: " +
         std::to_string(system.dictionaries().for_column(city_col).size()) +
         " entries");
    const std::vector<Query> workload = make_workload(system);
    AsyncHybridExecutor executor(system);
    serial = drive("serial submit()", workload, [&](Query q) {
      return executor.submit(std::move(q));
    });
    executor.shutdown();
  }

  PathResult batched;
  IngestStats stats;
  SchedulerCounters sched{};
  {
    HybridOlapSystem system(table, system_config());
    const std::vector<Query> workload = make_workload(system);
    AsyncHybridExecutor executor(system);
    IngestConfig ingest;
    ingest.shards = 2;
    ingest.batch_capacity = 128;
    ingest.flush_timeout = Seconds{0.005};
    ingest.shard_queue_capacity = 2 * kQueries;  // never shed: measure capacity
    ShardedIngestFrontEnd front_end(executor, ingest);
    batched = drive("sharded batched", workload, [&](Query q) {
      return front_end.submit(std::move(q));
    });
    front_end.shutdown();
    stats = front_end.stats();
    if (const auto* qs =
            dynamic_cast<const QueueingScheduler*>(&system.scheduler())) {
      sched = qs->counters();
    }
    executor.shutdown();
  }

  TablePrinter table_out({"path", "admitted Q/s", "p50 ms", "p99 ms",
                          "completed", "makespan s"});
  for (const PathResult* r : {&serial, &batched}) {
    table_out.add_row({r->name, TablePrinter::fixed(r->qps, 1),
                       TablePrinter::fixed(r->p50_ms, 2),
                       TablePrinter::fixed(r->p99_ms, 2),
                       std::to_string(r->completed),
                       TablePrinter::fixed(r->makespan_s, 3)});
  }
  table_out.print(std::cout, "Admitted throughput and submit->get latency");

  note("front-end: " + std::to_string(stats.flushes) + " flushes (" +
       std::to_string(stats.flush_by_capacity) + " capacity, " +
       std::to_string(stats.flush_by_timeout) + " timeout, " +
       std::to_string(stats.flush_on_close) + " close), mean batch " +
       TablePrinter::fixed(stats.batch_sizes.mean_size(), 1) +
       ", aggregated " + std::to_string(stats.aggregated) + "/" +
       std::to_string(stats.submitted));
  note("scheduler: " + std::to_string(sched.batch_commits) +
       " batch commits covering " + std::to_string(sched.batched_queries) +
       " queries (one lock + one ledger commit per batch)");

  const double speedup = batched.qps / serial.qps;
  const bool p99_ok = batched.p99_ms <= serial.p99_ms;
  const bool pass = speedup >= 10.0 && p99_ok;
  note("");
  note("verdict: " + TablePrinter::fixed(speedup, 1) +
       "x admitted Q/s at p99 " + TablePrinter::fixed(batched.p99_ms, 2) +
       " ms vs " + TablePrinter::fixed(serial.p99_ms, 2) + " ms — " +
       (pass ? "PASS (>= 10x at equal-or-better p99)"
             : "FAIL (needs >= 10x at equal-or-better p99)"));

  std::ofstream json("BENCH_sustained_ingest.json");
  json << "{\n"
       << "  \"bench\": \"sustained_ingest\",\n"
       << "  \"rows\": " << kRows << ",\n"
       << "  \"queries\": " << kQueries << ",\n"
       << "  \"producers\": " << kProducers << ",\n"
       << "  \"text_values_per_query\": " << kTextValuesPerQuery << ",\n"
       << "  \"serial\": {\"qps\": " << serial.qps
       << ", \"p50_ms\": " << serial.p50_ms << ", \"p99_ms\": "
       << serial.p99_ms << ", \"completed\": " << serial.completed << "},\n"
       << "  \"batched\": {\"qps\": " << batched.qps
       << ", \"p50_ms\": " << batched.p50_ms << ", \"p99_ms\": "
       << batched.p99_ms << ", \"completed\": " << batched.completed
       << "},\n"
       << "  \"batch_commits\": " << sched.batch_commits << ",\n"
       << "  \"mean_batch_size\": " << stats.batch_sizes.mean_size() << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"p99_equal_or_better\": " << (p99_ok ? "true" : "false")
       << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  note("wrote BENCH_sustained_ingest.json");
  return pass ? 0 : 1;
}

}  // namespace holap::bench

int main() { return holap::bench::run(); }
