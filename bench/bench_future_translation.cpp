// Extension — the paper's future work, realised: "We want to minimize this
// effect [the ~7% translation slowdown] by using more sophisticated
// translation algorithm in our future implementation."
//
// Three successors to the per-parameter linear scan are evaluated in the
// same GPU-only scenario that produced the published 69 -> 64 Q/s drop:
//   1. batch translation (Aho–Corasick over the query's parameters, one
//      dictionary pass per distinct column — dict/aho_corasick.hpp);
//   2. a parallel translation partition (2 and 4 workers);
//   3. hashed dictionary lookup (O(1) per parameter).
// Plus native timings of the three algorithms on a real dictionary.
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "query/batch_translator.hpp"
#include "relational/generator.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

double gpu_only_qps(double text, TranslationCosting costing, int workers) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = false;
  o.text_probability = text;
  o.dict_length_multiplier = 1350.0;
  o.translation_costing = costing;
  const PaperScenario s{std::move(o)};
  const auto queries = s.make_workload(3000);
  const auto p = s.make_policy();
  SimConfig c = paper_sim_config();
  c.translation_workers = workers;
  return run_simulation(*p, queries, c).throughput_qps;
}

}  // namespace

int main() {
  heading("Future work: sophisticated translation",
          "GPU-only scenario of the published ~7% translation slowdown "
          "(dictionaries ~2.2M entries,\nall text-capable conditions "
          "arrive as strings), with each successor algorithm.");

  const double baseline = gpu_only_qps(0.0, TranslationCosting::kPerParameter,
                                       1);
  TablePrinter t({"translation algorithm", "rate [Q/s]",
                  "slowdown vs no-text"});
  struct Case {
    const char* name;
    TranslationCosting costing;
    int workers;
  };
  for (const auto& c :
       {Case{"none (no text parameters)", TranslationCosting::kPerParameter,
             1},
        Case{"per-parameter linear scan (paper)",
             TranslationCosting::kPerParameter, 1},
        Case{"batch Aho-Corasick (1 pass/column)",
             TranslationCosting::kBatchPerColumn, 1},
        Case{"parallel partition, 2 workers",
             TranslationCosting::kPerParameter, 2},
        Case{"parallel partition, 4 workers",
             TranslationCosting::kPerParameter, 4},
        Case{"hashed lookup", TranslationCosting::kHashed, 1}}) {
    const bool none = std::string(c.name).starts_with("none");
    const double qps = none ? baseline
                            : gpu_only_qps(1.0, c.costing, c.workers);
    t.add_row({c.name, TablePrinter::fixed(qps, 1),
               TablePrinter::fixed(100.0 * (1.0 - qps / baseline), 1) + "%"});
  }
  t.print(std::cout, "GPU-only processing rate by translation algorithm");

  // Native timings: translate one 8-parameter query against a real 200k
  // dictionary with each algorithm.
  note("");
  GeneratorConfig gen;
  gen.rows = 1000;
  gen.seed = 5;
  gen.text_levels = {{1, 3}};
  const FactTable table = generate_fact_table(tiny_model_dimensions(), gen);
  DictionarySet dicts;
  Dictionary& dict =
      dicts.create_column(table.schema().dimension_column(1, 3));
  for (std::uint64_t i = 0; i < 200'000; ++i) {
    dict.encode_or_add(synth_name(NameKind::kCity, i));
  }
  // The eq.-(18) upper-bound regime: absent strings force full scans (a
  // present string would let the linear scan exit early, understating the
  // bound the scheduler must budget for).
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  for (int i = 0; i < 8; ++i) {
    c.text_values.push_back("~absent-" + std::to_string(i) + "~");
  }
  q.conditions.push_back(c);
  q.measures = {12};

  TablePrinter native({"algorithm", "8-parameter query [ms]", "all found"});
  const auto time_algorithm = [&](const char* name, auto&& translate) {
    Query copy = q;
    WallTimer timer;
    const TranslationReport report = translate(copy);
    native.add_row({name, TablePrinter::fixed(timer.seconds() * 1e3, 3),
                    report.all_found ? "yes" : "absent by design"});
  };
  const Translator linear(table.schema(), dicts, DictSearch::kLinearScan);
  const Translator hashed(table.schema(), dicts, DictSearch::kHashed);
  const BatchTranslator batch(table.schema(), dicts);
  time_algorithm("per-parameter linear scan",
                 [&](Query& query) { return linear.translate(query); });
  time_algorithm("batch Aho-Corasick",
                 [&](Query& query) { return batch.translate(query); });
  time_algorithm("hashed lookup",
                 [&](Query& query) { return hashed.translate(query); });
  native.print(std::cout,
               "Native translation of one 8-parameter query, 200k-entry "
               "dictionary");
  note("shape check: batch translation scans the dictionary once instead "
       "of once per parameter (8x\nless data touched; the automaton walk "
       "costs more per byte than a failed compare, so the net\nnative win "
       "grows with the parameter count); hashing removes the dictionary-"
       "size dependence\naltogether. In the system simulation every "
       "successor erases the published ~7% GPU-side cost.");
  return 0;
}
