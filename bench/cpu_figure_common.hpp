// Shared driver for Figures 4 and 5: native sweep + piecewise re-fit of
// the CPU model at a given thread count, printed beside the published
// coefficients.
#pragma once

#include "bench_util.hpp"
#include "perfmodel/calibrate.hpp"

namespace holap::bench {



inline void run_figure(const char* figure, int threads, const CpuPerfModel& paper,
                const char* paper_eq) {
  heading(figure, std::string("CPU processing time vs sub-cube size, ") +
                      std::to_string(threads) +
                      " OpenMP threads. Native sweep + piecewise re-fit "
                      "(power law / linear, 512 MB split)\nnext to the "
                      "published " +
                      paper_eq + ".");

  CpuCalibrationConfig config;
  config.sizes_mb = {Megabytes{1},   Megabytes{2},   Megabytes{4},
                     Megabytes{8},   Megabytes{16},  Megabytes{32},
                     Megabytes{64},  Megabytes{128}, Megabytes{256},
                     Megabytes{384}, Megabytes{640}, Megabytes{768}};
  config.threads = threads;
  config.repetitions = 3;
  const CpuCalibrationResult result = calibrate_cpu(config);

  TablePrinter t({"sub-cube [MB]", "native [ms]", "our fit [ms]",
                  "paper model [ms]"});
  for (const auto& sample : result.samples) {
    t.add_row({TablePrinter::fixed(sample.x, 1),
               TablePrinter::fixed(sample.seconds.value() * 1000.0, 3),
               TablePrinter::fixed(
                   result.model.seconds(Megabytes{sample.x}).value() * 1000.0,
                                   3),
               TablePrinter::fixed(
                   paper.seconds(Megabytes{sample.x}).value() * 1000.0, 3)});
  }
  t.print(std::cout, "Processing time vs sub-cube size");

  note("");
  note("our Range A fit:   t = " +
       TablePrinter::scientific(result.model.range_a().a, 3) + " * SC^" +
       TablePrinter::fixed(result.model.range_a().b, 4) +
       "   (r2 = " + TablePrinter::fixed(result.model.range_a().r2, 4) +
       ")");
  note("paper Range A:     t = " +
       TablePrinter::scientific(paper.range_a().a, 3) + " * SC^" +
       TablePrinter::fixed(paper.range_a().b, 4));
  note("our Range B fit:   t = " +
       TablePrinter::scientific(result.model.range_b().a, 3) + " * SC + " +
       TablePrinter::scientific(result.model.range_b().b, 3));
  note("paper Range B:     t = " +
       TablePrinter::scientific(paper.range_b().a, 3) + " * SC + " +
       TablePrinter::scientific(paper.range_b().b, 3));
  note("shape check: near-unit power-law exponent (bandwidth-bound "
       "streaming) and positive linear slope\nabove the split — the eq. "
       "(4) structure the scheduler consumes.");
}



}  // namespace holap::bench
