// Figure 9 — dictionary search performance vs dictionary size.
//
// The paper's methodology, natively: build real dictionaries of growing
// size, time the linear-scan search (the upper bound eq. 18 charges for),
// fit the through-origin line P_DICT = k * D_L, and print our k next to
// the published 0.0138 µs/entry. The hashed fast path (the paper's
// future-work "more sophisticated translation algorithm") is measured
// alongside to quantify what it would buy.
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "dict/dictionary.hpp"
#include "perfmodel/calibrate.hpp"
#include "relational/names.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Figure 9",
          "Dictionary search time vs dictionary length (linear scan = the "
          "eq. 17/18 upper bound).");

  DictCalibrationConfig config;
  config.lengths = {1'000,   5'000,   10'000,  50'000,
                    100'000, 500'000, 1'000'000, 2'000'000};
  config.searches = 30;
  const DictCalibrationResult result = calibrate_dict(config);

  TablePrinter t({"dictionary entries", "native scan [us]",
                  "our fit [us]", "paper model [us]", "hashed [us]"});
  const DictPerfModel paper = DictPerfModel::paper();
  for (const auto& sample : result.samples) {
    const auto len = static_cast<std::size_t>(sample.x);
    // Hashed comparison point: average over many lookups.
    Dictionary dict;
    for (std::size_t i = 0; i < len; ++i) {
      dict.encode_or_add(synth_name(NameKind::kCity, i));
    }
    const std::string probe = synth_name(NameKind::kCity, len / 2);
    WallTimer timer;
    std::int64_t sink = 0;
    constexpr int kHashedLookups = 20'000;
    for (int i = 0; i < kHashedLookups; ++i) {
      sink += dict.find(probe, DictSearch::kHashed).value_or(-1);
    }
    const double hashed_us = timer.seconds() / kHashedLookups * 1e6;
    if (sink < 0) return 1;  // defeat optimisation; never taken

    t.add_row({std::to_string(len),
               TablePrinter::fixed(sample.seconds.value() * 1e6, 1),
               TablePrinter::fixed(
                   result.model.search_seconds(len).value() * 1e6, 1),
               TablePrinter::fixed(paper.search_seconds(len).value() * 1e6, 1),
               TablePrinter::fixed(hashed_us, 3)});
  }
  t.print(std::cout, "Figure 9: dictionary search performance");

  note("");
  note("our fitted slope:   k = " +
       TablePrinter::scientific(result.model.seconds_per_entry(), 3) +
       " s/entry");
  note("paper's eq. (17):   k = 1.380e-08 s/entry (0.0138 us per entry)");
  note("shape check: search time linear in dictionary length; the hashed "
       "path is size-independent —\nquantifying the future-work headroom "
       "the paper names.");
  return 0;
}
