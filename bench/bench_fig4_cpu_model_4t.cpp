// Figure 4 — performance characteristics of OLAP cube processing, 4-thread
// OpenMP implementation: processing time vs sub-cube size, with the
// piecewise fit f_A (power law, Range A) / f_B (linear, Range B) of eq. (7).
#include "cpu_figure_common.hpp"

int main() {
  holap::bench::run_figure("Figure 4", 4, holap::CpuPerfModel::paper_4t(),
                           "eq. (7)");
  return 0;
}
