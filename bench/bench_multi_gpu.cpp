// Extension — multiple GPU accelerators with a topology-aware catalog.
//
// §I positions the scheduler as supporting "multiple CPU and GPU
// partitions"; this bench scales the accelerator count. Each device
// carries its own {1,1,2,2,4,4} partition ladder AND its own serialised
// kernel-dispatch stage, so devices relieve the launch bottleneck that
// capped the single-GPU system near 69 Q/s — until the (single-threaded)
// translation partition or the CPU side becomes the next ceiling, which
// the bench makes visible. The device catalog (sched/devices.hpp) prices
// the off-home transfer cost into every estimate, and a final section
// shows the elastic trigger merging partitions under saturation.
//
// Machine-readable results land in BENCH_multi_gpu.json next to the
// binary; the process exits non-zero when the 4-device no-text speedup
// falls below the 3x scaling gate.
#include <array>
#include <cmath>
#include <fstream>

#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

constexpr int kDeviceSteps[] = {1, 2, 3, 4};
constexpr double kScalingGate = 3.0;  // no-text speedup required at 4 devices

ScenarioOptions options_for(int devices, bool enable_cpu, double text,
                            bool elastic) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = enable_cpu;
  o.gpu_devices = devices;
  o.text_probability = text;
  o.dict_length_multiplier = 1350.0;
  // The scheduler must know about the launch stage, or it parks all work
  // on one device's slow queues (its clocks never see the real
  // bottleneck) — see SchedulerConfig::modeled_gpu_dispatch.
  o.modeled_gpu_dispatch = Seconds{0.0145};
  // Topology-aware placement: device 0 holds the resident columns; the
  // other devices pay a per-fraction staging cost, priced into T_R.
  o.topology.enabled = true;
  o.topology.home_device = 0;
  o.topology.transfer_unit = Seconds{0.002};
  if (elastic) {
    // The serialised dispatch stage absorbs most of the queueing under
    // saturation, so per-queue backlog thresholds sit well under the
    // deadline to let the trigger see the residual imbalance.
    o.elastic.enabled = true;
    o.elastic.check_interval = Seconds{0.05};
    o.elastic.sustain_checks = 3;
    o.elastic.merge_backlog = Seconds{0.03};
    o.elastic.split_backlog = Seconds{0.003};
  }
  return o;
}

SimResult run(int devices, bool enable_cpu, double text,
              int translation_workers, bool elastic = false) {
  const PaperScenario s{options_for(devices, enable_cpu, text, elastic)};
  const auto queries = s.make_workload(4000);
  const auto p = s.make_policy();
  SimConfig c = paper_sim_config();
  c.closed_clients = 64;
  c.gpu_queue_device = s.gpu_queue_device_map();
  c.translation_workers = translation_workers;
  return run_simulation(*p, queries, c);
}

/// Speedup of `qps` over `base`, guarded: a zero/denormal/NaN baseline
/// (e.g. a column whose single-device run completed nothing) yields 0
/// instead of inf/NaN poisoning the table and the JSON.
double speedup_vs(double qps, double base) {
  if (!std::isfinite(qps) || !std::isfinite(base) || base <= 0.0) return 0.0;
  return qps / base;
}

std::string cell(double qps, double base) {
  return TablePrinter::fixed(qps, 1) + " (" +
         TablePrinter::fixed(speedup_vs(qps, base), 2) + "x)";
}

}  // namespace

int main() {
  heading("Extension: multi-GPU scaling",
          "1-4 simulated C2070s, each with its own {1,1,2,2,4,4} ladder "
          "and dispatch stage;\nTable-3 workload, closed loop, device "
          "catalog pricing off-home transfers into T_R.");

  struct Row {
    int devices = 0;
    double gpu_plain = 0.0;
    double gpu_text = 0.0;
    double hybrid = 0.0;
    double gpu_text_par = 0.0;
  };
  std::array<Row, std::size(kDeviceSteps)> rows;

  TablePrinter t({"devices", "GPU-only, no text [Q/s]",
                  "GPU-only, text [Q/s]", "hybrid 8T [Q/s]",
                  "text + 4 transl. workers [Q/s]"});
  for (std::size_t i = 0; i < std::size(kDeviceSteps); ++i) {
    const int devices = kDeviceSteps[i];
    rows[i] = {devices, run(devices, false, 0.0, 1).throughput_qps,
               run(devices, false, 1.0, 1).throughput_qps,
               run(devices, true, 0.5, 1).throughput_qps,
               run(devices, false, 1.0, 4).throughput_qps};
    // Every column reports its speedup against ITS OWN single-device
    // value — a text column compared against the no-text baseline would
    // overstate how little extra devices buy it.
    t.add_row({std::to_string(devices),
               cell(rows[i].gpu_plain, rows[0].gpu_plain),
               cell(rows[i].gpu_text, rows[0].gpu_text),
               cell(rows[i].hybrid, rows[0].hybrid),
               cell(rows[i].gpu_text_par, rows[0].gpu_text_par)});
  }
  t.print(std::cout, "Throughput vs accelerator count");

  note("");
  note("shape check: without text the dispatch stages scale near-linearly; "
       "with text the SINGLE\ntranslation partition becomes the ceiling "
       "(extra devices buy nothing) until it is\nparallelised too — the "
       "future-work translation upgrades and multi-GPU compose.");

  // Elastic trigger demo: saturate 2 devices so per-device backlog stays
  // over the merge threshold and the partitioner folds narrow siblings
  // into wider partitions mid-run.
  const SimResult elastic = run(2, false, 0.0, 1, true);
  note("");
  note("elastic (2 devices, saturated): " +
       std::to_string(elastic.repartition_merges) + " merges, " +
       std::to_string(elastic.repartition_splits) + " splits, " +
       std::to_string(elastic.repartition_drained) +
       " queries drained+replaced, " +
       TablePrinter::fixed(elastic.throughput_qps, 1) + " Q/s");

  const double gate_speedup =
      speedup_vs(rows.back().gpu_plain, rows.front().gpu_plain);
  const bool pass = gate_speedup >= kScalingGate;
  note("");
  note("verdict: " + TablePrinter::fixed(gate_speedup, 2) +
       "x no-text throughput at 4 devices — " +
       (pass ? "PASS (>= 3x)" : "FAIL (needs >= 3x)"));

  std::ofstream json("BENCH_multi_gpu.json");
  json << "{\n"
       << "  \"bench\": \"multi_gpu\",\n"
       << "  \"queries\": 4000,\n"
       << "  \"transfer_unit_s\": 0.002,\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"devices\": " << r.devices
         << ", \"gpu_no_text_qps\": " << r.gpu_plain
         << ", \"gpu_no_text_speedup\": "
         << speedup_vs(r.gpu_plain, rows[0].gpu_plain)
         << ", \"gpu_text_qps\": " << r.gpu_text
         << ", \"gpu_text_speedup\": "
         << speedup_vs(r.gpu_text, rows[0].gpu_text)
         << ", \"hybrid_qps\": " << r.hybrid << ", \"hybrid_speedup\": "
         << speedup_vs(r.hybrid, rows[0].hybrid)
         << ", \"gpu_text_par_qps\": " << r.gpu_text_par
         << ", \"gpu_text_par_speedup\": "
         << speedup_vs(r.gpu_text_par, rows[0].gpu_text_par) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"elastic\": {\"devices\": 2, \"merges\": "
       << elastic.repartition_merges
       << ", \"splits\": " << elastic.repartition_splits
       << ", \"drained\": " << elastic.repartition_drained
       << ", \"qps\": " << elastic.throughput_qps << "},\n"
       << "  \"no_text_speedup_at_4\": " << gate_speedup << ",\n"
       << "  \"gate\": " << kScalingGate << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  note("wrote BENCH_multi_gpu.json");
  return pass ? 0 : 1;
}
