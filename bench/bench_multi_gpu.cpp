// Extension — multiple GPU accelerators.
//
// §I positions the scheduler as supporting "multiple CPU and GPU
// partitions"; this bench scales the accelerator count. Each device
// carries its own {1,1,2,2,4,4} partition ladder AND its own serialised
// kernel-dispatch stage, so devices relieve the launch bottleneck that
// capped the single-GPU system near 69 Q/s — until the (single-threaded)
// translation partition or the CPU side becomes the next ceiling, which
// the bench makes visible.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

SimResult run(int devices, bool enable_cpu, double text,
              int translation_workers) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = enable_cpu;
  o.gpu_devices = devices;
  o.text_probability = text;
  o.dict_length_multiplier = 1350.0;
  // The scheduler must know about the launch stage, or it parks all work
  // on one device's slow queues (its clocks never see the real
  // bottleneck) — see SchedulerConfig::modeled_gpu_dispatch.
  o.modeled_gpu_dispatch = Seconds{0.0145};
  const PaperScenario s{o};
  const auto queries = s.make_workload(4000);
  const auto p = s.make_policy();
  SimConfig c = paper_sim_config();
  c.closed_clients = 64;
  c.gpu_queue_device = s.gpu_queue_device_map();
  c.translation_workers = translation_workers;
  return run_simulation(*p, queries, c);
}

}  // namespace

int main() {
  heading("Extension: multi-GPU scaling",
          "1-4 simulated C2070s, each with its own {1,1,2,2,4,4} ladder "
          "and dispatch stage;\nTable-3 workload, closed loop.");

  TablePrinter t({"devices", "GPU-only, no text [Q/s]",
                  "GPU-only, text [Q/s]", "hybrid 8T [Q/s]",
                  "text + 4 transl. workers [Q/s]"});
  double base_gpu = 0.0;
  for (const int devices : {1, 2, 3, 4}) {
    const double gpu_plain = run(devices, false, 0.0, 1).throughput_qps;
    const double gpu_text = run(devices, false, 1.0, 1).throughput_qps;
    const double hybrid = run(devices, true, 0.5, 1).throughput_qps;
    const double gpu_text_par = run(devices, false, 1.0, 4).throughput_qps;
    if (devices == 1) base_gpu = gpu_plain;
    t.add_row({std::to_string(devices),
               TablePrinter::fixed(gpu_plain, 1) + " (" +
                   TablePrinter::fixed(gpu_plain / base_gpu, 2) + "x)",
               TablePrinter::fixed(gpu_text, 1),
               TablePrinter::fixed(hybrid, 1),
               TablePrinter::fixed(gpu_text_par, 1)});
  }
  t.print(std::cout, "Throughput vs accelerator count");

  note("");
  note("shape check: without text the dispatch stages scale near-linearly; "
       "with text the SINGLE\ntranslation partition becomes the ceiling "
       "(extra devices buy nothing) until it is\nparallelised too — the "
       "future-work translation upgrades and multi-GPU compose.");
  return 0;
}
