// Figure 5 — performance characteristics of OLAP cube processing, 8-thread
// OpenMP implementation: processing time vs sub-cube size, with the
// piecewise fit f_A (power law, Range A) / f_B (linear, Range B) of eq. (10).
#include "cpu_figure_common.hpp"

int main() {
  holap::bench::run_figure("Figure 5", 8, holap::CpuPerfModel::paper_8t(),
                           "eq. (10)");
  return 0;
}
