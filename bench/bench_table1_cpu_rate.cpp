// Table 1 — processing rate of CPU-based OLAP cube processing for the cube
// set {~500 MB, ~500 KB, ~4 KB}: sequential vs 4- and 8-thread OpenMP.
// Published: 12 / 87 / 110 Q/s.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

int main() {
  heading("Table 1",
          "Processing rate of CPU-based OLAP cube processing, cube set "
          "{~500MB, ~500KB, ~4KB}.\nModel-driven simulation with the "
          "published CPU performance functions (eqs. 7/10) and the\n"
          "calibrated 5 ms per-query CPU-side overhead; closed loop, "
          "2000 queries.");

  const double paper[] = {12.0, 87.0, 110.0};
  const int threads[] = {1, 4, 8};
  SimConfig config = paper_sim_config();
  config.closed_clients = 4;  // the CPU partition is a single queue

  TablePrinter t({"threads", "measured [Q/s]", "paper [Q/s]", "ratio"});
  double rates[3];
  for (int i = 0; i < 3; ++i) {
    rates[i] = simulate_qps(table1_options(threads[i]), 2000, config);
    t.add_row({std::to_string(threads[i]), TablePrinter::fixed(rates[i], 1),
               TablePrinter::fixed(paper[i], 0),
               TablePrinter::fixed(rates[i] / paper[i], 2)});
  }
  t.print(std::cout, "Table 1: CPU-only processing rate");

  note("");
  note("shape check: parallel >> sequential (paper 7.3x/9.2x, measured " +
       TablePrinter::fixed(rates[1] / rates[0], 1) + "x/" +
       TablePrinter::fixed(rates[2] / rates[0], 1) + "x); 8T > 4T.");
  return 0;
}
