// Micro-benchmarks (google-benchmark) for the per-operation costs the
// system models are built from: dictionary search (both strategies), cube
// sub-cube aggregation, the GPU scan kernel, and one scheduling decision.
#include <benchmark/benchmark.h>

#include "cube/aggregate.hpp"
#include "cube/builder.hpp"
#include "dict/dictionary.hpp"
#include "gpusim/scan.hpp"
#include "relational/generator.hpp"
#include "sched/catalog.hpp"
#include "sched/scheduler.hpp"

namespace holap {
namespace {

void BM_DictionarySearch_Linear(benchmark::State& state) {
  Dictionary dict;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    dict.encode_or_add(synth_name(NameKind::kCity, i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.find("~absent~", DictSearch::kLinearScan));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DictionarySearch_Linear)->Range(1 << 10, 1 << 18);

void BM_DictionarySearch_Hashed(benchmark::State& state) {
  Dictionary dict;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    dict.encode_or_add(synth_name(NameKind::kCity, i));
  }
  const std::string probe = synth_name(NameKind::kCity, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.find(probe, DictSearch::kHashed));
  }
}
BENCHMARK(BM_DictionarySearch_Hashed)->Range(1 << 10, 1 << 18);

void BM_CubeAggregate(benchmark::State& state) {
  // 2-d cube; region size controlled by the range argument (in 0.5 MB
  // rows), matching the calibration harness's layout.
  const auto rows = static_cast<std::uint32_t>(state.range(0));
  const std::vector<Dimension> dims = {
      Dimension("r", {{"r", rows}}),
      Dimension("c", {{"c", 65'536}}),
  };
  DenseCube cube(dims, 0, CubeBasis::kSum, 0);
  SplitMix64 rng(5);
  for (auto& c : cube.cells()) c = rng.uniform01();
  CubeRegion region;
  region.dims = {{{0, static_cast<std::int32_t>(rows) - 1}},
                 {{0, 65'535}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregate_region(cube, region, 0).value);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cube.size_bytes()));
}
BENCHMARK(BM_CubeAggregate)->Arg(8)->Arg(32)->Arg(128);

void BM_GpuScanKernel(benchmark::State& state) {
  const FactTable table =
      generate_paper_model_table(static_cast<std::size_t>(state.range(0)),
                                 3);
  Query q;
  q.conditions.push_back({0, 2, 0, 99, {}, {}});
  q.conditions.push_back({1, 1, 0, 9, {}, {}});
  q.measures = {12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpu_scan(table, q, 14).answer.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GpuScanKernel)->Arg(10'000)->Arg(100'000);

void BM_SchedulerDecision(benchmark::State& state) {
  const auto dims = paper_model_dimensions();
  const TableSchema schema = make_star_schema(
      dims, {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  const VirtualCubeCatalog catalog(dims, {0, 1, 2, 3});
  const VirtualTranslationModel translation(schema, 1000.0);
  SchedulerConfig config;
  FigureTenScheduler scheduler(
      config, make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0}, 16,
                                   &catalog, &translation));
  Query q;
  q.conditions.push_back({0, 2, 0, 99, {}, {}});
  q.conditions.push_back({1, 3, 0, 511, {}, {}});
  q.measures = {12, 13};
  Seconds now{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(q, now));
    now += Seconds{1.0};  // keep queues from growing unboundedly backlogged
  }
}
BENCHMARK(BM_SchedulerDecision);

void BM_CubeBuild(benchmark::State& state) {
  GeneratorConfig config;
  config.rows = static_cast<std::size_t>(state.range(0));
  config.seed = 7;
  const FactTable table =
      generate_fact_table(tiny_model_dimensions(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_cube(table, 3, CubeBasis::kSum, 12, 0).cell_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CubeBuild)->Arg(10'000)->Arg(100'000);

}  // namespace
}  // namespace holap

BENCHMARK_MAIN();
