// Ablation — how far from optimal is the Figure-10 heuristic?
//
// §II-D contrasts fast heuristics with exhaustive/LP schedulers (Prakash,
// Yen) that "yield quality solutions at the cost of increased solution
// search time". For small batches the optimum is computable: enumerate
// every assignment of N queries to K partition queues (FIFO within a
// queue, same clock arithmetic the scheduler uses) and take the best by
// (deadline misses, then makespan). This bench reports the heuristics'
// gap to that optimum across random batches — and the price: the
// exhaustive search evaluates K^N schedules to place N queries.
#include <algorithm>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "query/workload.hpp"
#include "sched/baselines.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

struct Costs {
  // processing[q][k]: time of query q on queue k (k = 0 is the CPU,
  // infinity when the CPU cannot answer).
  std::vector<std::vector<double>> processing;
  double deadline;
};

struct Outcome {
  int misses = 0;
  double makespan = 0.0;
  bool operator<(const Outcome& other) const {
    if (misses != other.misses) return misses < other.misses;
    return makespan < other.makespan;
  }
};

Outcome evaluate(const Costs& costs, const std::vector<int>& assignment) {
  std::vector<double> clocks(costs.processing[0].size(), 0.0);
  Outcome outcome;
  for (std::size_t q = 0; q < assignment.size(); ++q) {
    const auto k = static_cast<std::size_t>(assignment[q]);
    clocks[k] += costs.processing[q][k];
    outcome.misses += clocks[k] > costs.deadline;
    outcome.makespan = std::max(outcome.makespan, clocks[k]);
  }
  return outcome;
}

Outcome exhaustive_best(const Costs& costs, std::size_t& evaluated) {
  const std::size_t n = costs.processing.size();
  const std::size_t k = costs.processing[0].size();
  std::vector<int> assignment(n, 0);
  Outcome best{1 << 30, 1e300};
  for (;;) {
    ++evaluated;
    const Outcome outcome = evaluate(costs, assignment);
    if (outcome < best) best = outcome;
    std::size_t d = 0;
    while (d < n && ++assignment[d] == static_cast<int>(k)) {
      assignment[d++] = 0;
    }
    if (d == n) break;
  }
  return best;
}

}  // namespace

int main() {
  heading("Ablation: heuristic vs exhaustive optimum",
          "Batches of 8 queries over 4 partitions (CPU + 1/2/4-SM GPU "
          "classes); the optimum enumerates\nall 4^8 = 65536 schedules. "
          "Objective: deadline misses, then makespan.");

  // Build costs directly from the published models so the policies and
  // the exhaustive search price queries identically. One queue per
  // partition class keeps K^N enumerable.
  ScenarioOptions opts = table3_options(8);
  opts.gpu_partitions = {1, 2, 4};
  opts.text_probability = 0.0;
  opts.deadline = Seconds{0.03};
  const PaperScenario s{opts};
  const CostEstimator estimator = s.make_estimator();

  TablePrinter t({"batch", "fig10 misses", "MET misses", "MCT misses",
                  "optimal misses", "fig10 makespan [ms]",
                  "optimal [ms]", "schedules searched"});
  SplitMix64 seeds(2012);
  double fig10_total = 0.0, optimal_total = 0.0;
  int fig10_miss_total = 0, optimal_miss_total = 0;
  for (int batch = 0; batch < 8; ++batch) {
    const auto queries = [&] {
      ScenarioOptions wl_opts = opts;
      wl_opts.workload_seed = seeds.next();
      const PaperScenario ws{wl_opts};
      return ws.make_workload(8);
    }();

    Costs costs;
    costs.deadline = opts.deadline.value();
    for (const Query& q : queries) {
      const CostEstimate est = estimator.estimate(q);
      std::vector<double> row;
      row.push_back(est.cpu ? est.cpu->value() : 1e300);
      for (const Seconds g : est.gpu) row.push_back(g.value());
      costs.processing.push_back(std::move(row));
    }

    std::size_t evaluated = 0;
    const Outcome optimal = exhaustive_best(costs, evaluated);

    const auto run_policy = [&](const char* name) {
      auto policy = s.make_policy(name);
      std::vector<int> assignment;
      for (const Query& q : queries) {
        const Placement p = policy->schedule(q, Seconds{});
        assignment.push_back(p.queue.kind == QueueRef::kCpu
                                 ? 0
                                 : 1 + p.queue.index);
      }
      return evaluate(costs, assignment);
    };
    const Outcome f10 = run_policy("figure10");
    const Outcome met = run_policy("MET");
    const Outcome mct = run_policy("MCT");
    fig10_total += f10.makespan;
    optimal_total += optimal.makespan;
    fig10_miss_total += f10.misses;
    optimal_miss_total += optimal.misses;

    t.add_row({std::to_string(batch), std::to_string(f10.misses),
               std::to_string(met.misses), std::to_string(mct.misses),
               std::to_string(optimal.misses),
               TablePrinter::fixed(f10.makespan * 1e3, 1),
               TablePrinter::fixed(optimal.makespan * 1e3, 1),
               std::to_string(evaluated)});
  }
  t.print(std::cout, "Heuristics vs the exhaustive optimum (8 batches)");
  note("");
  note("aggregate: figure10 missed " + std::to_string(fig10_miss_total) +
       " deadlines vs optimal " + std::to_string(optimal_miss_total) +
       " (MET misses several); makespan premium " +
       TablePrinter::fixed(
           100.0 * (fig10_total / optimal_total - 1.0), 1) +
       "%.");
  note("shape check: figure10 ties the exhaustive optimum on the deadline "
       "objective — the one it\noptimises — with a single placement per "
       "query instead of 65536 evaluated schedules. The\nmakespan premium "
       "is its declared strategy: slowest-feasible-first deliberately "
       "spends makespan\nto keep fast partitions free for expensive "
       "late arrivals (§III-G).");
  return 0;
}
