// Ablation — "task the slower queues first" (§III-G).
//
// Figure 10 deliberately places each GPU-bound query in the SLOWEST queue
// that still meets its deadline, keeping the 4-SM partitions free "for the
// computationally expensive queries that might be submitted later". The
// ablation flips that to fastest-feasible-first and measures what happens
// to the expensive tail of the workload.
#include "bench_util.hpp"

using namespace holap;
using namespace holap::bench;

namespace {

SimResult run(bool fastest_first, double rate, Seconds deadline) {
  ScenarioOptions o = table3_options(8);
  o.enable_cpu = false;  // GPU placement is the object of study
  o.text_probability = 0.0;
  o.prefer_fastest_feasible_gpu = fastest_first;
  o.deadline = deadline;
  const PaperScenario s{std::move(o)};
  const auto queries = s.make_workload(2500);
  const auto p = s.make_policy();
  SimConfig c = paper_sim_config();
  c.arrival_rate = rate;
  c.gpu_dispatch_overhead = Seconds{0.0};  // expose pure placement effects
  return run_simulation(*p, queries, c);
}

}  // namespace

int main() {
  heading("Ablation: GPU queue ordering",
          "Slowest-feasible-first (the paper's rule) vs fastest-feasible-"
          "first, GPU-only, no dispatch ceiling.");

  for (const Seconds deadline : {Seconds{0.05}, Seconds{0.1}}) {
    TablePrinter t({"arrival [Q/s]", "slowest-first hit", "fastest-first hit",
                    "slowest-first p95 [ms]", "fastest-first p95 [ms]"});
    for (const double rate : {100.0, 200.0, 300.0, 400.0}) {
      const SimResult slow = run(false, rate, deadline);
      const SimResult fast = run(true, rate, deadline);
      t.add_row({TablePrinter::fixed(rate, 0),
                 TablePrinter::fixed(100.0 * slow.deadline_hit_rate, 1) + "%",
                 TablePrinter::fixed(100.0 * fast.deadline_hit_rate, 1) + "%",
                 TablePrinter::fixed(slow.p95_latency.value() * 1000.0, 1),
                 TablePrinter::fixed(fast.p95_latency.value() * 1000.0, 1)});
    }
    t.print(std::cout, "Deadline T_C = " +
                           TablePrinter::fixed(deadline.value() * 1000.0, 0) + " ms");
    note("");
  }
  note("shape check: fastest-first wins on raw p95 at light load (every "
       "query grabs a 4-SM partition)\nbut loses deadline adherence as "
       "load grows — it burns the fast partitions on queries the slow\n"
       "ones could have served within T_C, which is the asymmetry the "
       "paper's rule exploits.");
  return 0;
}
