# Empty dependencies file for olap_gpusim.
# This may be replaced when dependencies are built.
