# Empty compiler generated dependencies file for olap_gpusim.
# This may be replaced when dependencies are built.
