file(REMOVE_RECURSE
  "CMakeFiles/olap_gpusim.dir/device.cpp.o"
  "CMakeFiles/olap_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/olap_gpusim.dir/gpu_device.cpp.o"
  "CMakeFiles/olap_gpusim.dir/gpu_device.cpp.o.d"
  "CMakeFiles/olap_gpusim.dir/scan.cpp.o"
  "CMakeFiles/olap_gpusim.dir/scan.cpp.o.d"
  "libolap_gpusim.a"
  "libolap_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
