file(REMOVE_RECURSE
  "libolap_gpusim.a"
)
