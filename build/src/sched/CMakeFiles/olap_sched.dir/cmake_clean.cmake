file(REMOVE_RECURSE
  "CMakeFiles/olap_sched.dir/baselines.cpp.o"
  "CMakeFiles/olap_sched.dir/baselines.cpp.o.d"
  "CMakeFiles/olap_sched.dir/catalog.cpp.o"
  "CMakeFiles/olap_sched.dir/catalog.cpp.o.d"
  "CMakeFiles/olap_sched.dir/estimator.cpp.o"
  "CMakeFiles/olap_sched.dir/estimator.cpp.o.d"
  "CMakeFiles/olap_sched.dir/scheduler.cpp.o"
  "CMakeFiles/olap_sched.dir/scheduler.cpp.o.d"
  "libolap_sched.a"
  "libolap_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
