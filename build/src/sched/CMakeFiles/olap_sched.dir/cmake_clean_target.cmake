file(REMOVE_RECURSE
  "libolap_sched.a"
)
