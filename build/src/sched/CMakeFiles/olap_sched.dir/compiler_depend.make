# Empty compiler generated dependencies file for olap_sched.
# This may be replaced when dependencies are built.
