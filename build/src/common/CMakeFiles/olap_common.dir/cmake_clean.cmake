file(REMOVE_RECURSE
  "CMakeFiles/olap_common.dir/stats.cpp.o"
  "CMakeFiles/olap_common.dir/stats.cpp.o.d"
  "CMakeFiles/olap_common.dir/table_printer.cpp.o"
  "CMakeFiles/olap_common.dir/table_printer.cpp.o.d"
  "libolap_common.a"
  "libolap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
