file(REMOVE_RECURSE
  "CMakeFiles/olap_dict.dir/aho_corasick.cpp.o"
  "CMakeFiles/olap_dict.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/olap_dict.dir/dictionary.cpp.o"
  "CMakeFiles/olap_dict.dir/dictionary.cpp.o.d"
  "CMakeFiles/olap_dict.dir/dictionary_set.cpp.o"
  "CMakeFiles/olap_dict.dir/dictionary_set.cpp.o.d"
  "libolap_dict.a"
  "libolap_dict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
