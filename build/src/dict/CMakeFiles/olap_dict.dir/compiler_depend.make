# Empty compiler generated dependencies file for olap_dict.
# This may be replaced when dependencies are built.
