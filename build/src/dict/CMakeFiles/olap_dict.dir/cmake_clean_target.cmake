file(REMOVE_RECURSE
  "libolap_dict.a"
)
