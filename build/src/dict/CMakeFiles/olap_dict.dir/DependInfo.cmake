
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dict/aho_corasick.cpp" "src/dict/CMakeFiles/olap_dict.dir/aho_corasick.cpp.o" "gcc" "src/dict/CMakeFiles/olap_dict.dir/aho_corasick.cpp.o.d"
  "/root/repo/src/dict/dictionary.cpp" "src/dict/CMakeFiles/olap_dict.dir/dictionary.cpp.o" "gcc" "src/dict/CMakeFiles/olap_dict.dir/dictionary.cpp.o.d"
  "/root/repo/src/dict/dictionary_set.cpp" "src/dict/CMakeFiles/olap_dict.dir/dictionary_set.cpp.o" "gcc" "src/dict/CMakeFiles/olap_dict.dir/dictionary_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/olap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
