
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/binary_io.cpp" "src/relational/CMakeFiles/olap_relational.dir/binary_io.cpp.o" "gcc" "src/relational/CMakeFiles/olap_relational.dir/binary_io.cpp.o.d"
  "/root/repo/src/relational/csv.cpp" "src/relational/CMakeFiles/olap_relational.dir/csv.cpp.o" "gcc" "src/relational/CMakeFiles/olap_relational.dir/csv.cpp.o.d"
  "/root/repo/src/relational/dimensions.cpp" "src/relational/CMakeFiles/olap_relational.dir/dimensions.cpp.o" "gcc" "src/relational/CMakeFiles/olap_relational.dir/dimensions.cpp.o.d"
  "/root/repo/src/relational/fact_table.cpp" "src/relational/CMakeFiles/olap_relational.dir/fact_table.cpp.o" "gcc" "src/relational/CMakeFiles/olap_relational.dir/fact_table.cpp.o.d"
  "/root/repo/src/relational/generator.cpp" "src/relational/CMakeFiles/olap_relational.dir/generator.cpp.o" "gcc" "src/relational/CMakeFiles/olap_relational.dir/generator.cpp.o.d"
  "/root/repo/src/relational/names.cpp" "src/relational/CMakeFiles/olap_relational.dir/names.cpp.o" "gcc" "src/relational/CMakeFiles/olap_relational.dir/names.cpp.o.d"
  "/root/repo/src/relational/schema.cpp" "src/relational/CMakeFiles/olap_relational.dir/schema.cpp.o" "gcc" "src/relational/CMakeFiles/olap_relational.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/olap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
