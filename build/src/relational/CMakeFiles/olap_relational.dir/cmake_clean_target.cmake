file(REMOVE_RECURSE
  "libolap_relational.a"
)
