# Empty compiler generated dependencies file for olap_relational.
# This may be replaced when dependencies are built.
