file(REMOVE_RECURSE
  "CMakeFiles/olap_relational.dir/binary_io.cpp.o"
  "CMakeFiles/olap_relational.dir/binary_io.cpp.o.d"
  "CMakeFiles/olap_relational.dir/csv.cpp.o"
  "CMakeFiles/olap_relational.dir/csv.cpp.o.d"
  "CMakeFiles/olap_relational.dir/dimensions.cpp.o"
  "CMakeFiles/olap_relational.dir/dimensions.cpp.o.d"
  "CMakeFiles/olap_relational.dir/fact_table.cpp.o"
  "CMakeFiles/olap_relational.dir/fact_table.cpp.o.d"
  "CMakeFiles/olap_relational.dir/generator.cpp.o"
  "CMakeFiles/olap_relational.dir/generator.cpp.o.d"
  "CMakeFiles/olap_relational.dir/names.cpp.o"
  "CMakeFiles/olap_relational.dir/names.cpp.o.d"
  "CMakeFiles/olap_relational.dir/schema.cpp.o"
  "CMakeFiles/olap_relational.dir/schema.cpp.o.d"
  "libolap_relational.a"
  "libolap_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
