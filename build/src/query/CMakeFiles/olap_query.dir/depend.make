# Empty dependencies file for olap_query.
# This may be replaced when dependencies are built.
