
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/batch_translator.cpp" "src/query/CMakeFiles/olap_query.dir/batch_translator.cpp.o" "gcc" "src/query/CMakeFiles/olap_query.dir/batch_translator.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/query/CMakeFiles/olap_query.dir/parser.cpp.o" "gcc" "src/query/CMakeFiles/olap_query.dir/parser.cpp.o.d"
  "/root/repo/src/query/query.cpp" "src/query/CMakeFiles/olap_query.dir/query.cpp.o" "gcc" "src/query/CMakeFiles/olap_query.dir/query.cpp.o.d"
  "/root/repo/src/query/query_builder.cpp" "src/query/CMakeFiles/olap_query.dir/query_builder.cpp.o" "gcc" "src/query/CMakeFiles/olap_query.dir/query_builder.cpp.o.d"
  "/root/repo/src/query/translator.cpp" "src/query/CMakeFiles/olap_query.dir/translator.cpp.o" "gcc" "src/query/CMakeFiles/olap_query.dir/translator.cpp.o.d"
  "/root/repo/src/query/workload.cpp" "src/query/CMakeFiles/olap_query.dir/workload.cpp.o" "gcc" "src/query/CMakeFiles/olap_query.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dict/CMakeFiles/olap_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/olap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
