file(REMOVE_RECURSE
  "CMakeFiles/olap_query.dir/batch_translator.cpp.o"
  "CMakeFiles/olap_query.dir/batch_translator.cpp.o.d"
  "CMakeFiles/olap_query.dir/parser.cpp.o"
  "CMakeFiles/olap_query.dir/parser.cpp.o.d"
  "CMakeFiles/olap_query.dir/query.cpp.o"
  "CMakeFiles/olap_query.dir/query.cpp.o.d"
  "CMakeFiles/olap_query.dir/query_builder.cpp.o"
  "CMakeFiles/olap_query.dir/query_builder.cpp.o.d"
  "CMakeFiles/olap_query.dir/translator.cpp.o"
  "CMakeFiles/olap_query.dir/translator.cpp.o.d"
  "CMakeFiles/olap_query.dir/workload.cpp.o"
  "CMakeFiles/olap_query.dir/workload.cpp.o.d"
  "libolap_query.a"
  "libolap_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
