file(REMOVE_RECURSE
  "libolap_query.a"
)
