file(REMOVE_RECURSE
  "CMakeFiles/olap_sim.dir/scenario.cpp.o"
  "CMakeFiles/olap_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/olap_sim.dir/simulator.cpp.o"
  "CMakeFiles/olap_sim.dir/simulator.cpp.o.d"
  "libolap_sim.a"
  "libolap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
