file(REMOVE_RECURSE
  "libolap_sim.a"
)
