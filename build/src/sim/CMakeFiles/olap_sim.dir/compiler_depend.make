# Empty compiler generated dependencies file for olap_sim.
# This may be replaced when dependencies are built.
