
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/calibrate.cpp" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/calibrate.cpp.o" "gcc" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/calibrate.cpp.o.d"
  "/root/repo/src/perfmodel/cpu_model.cpp" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/cpu_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/cpu_model.cpp.o.d"
  "/root/repo/src/perfmodel/dict_model.cpp" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/dict_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/dict_model.cpp.o.d"
  "/root/repo/src/perfmodel/gpu_model.cpp" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/gpu_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/olap_perfmodel.dir/gpu_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/olap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/olap_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/olap_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/olap_query.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/olap_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
