file(REMOVE_RECURSE
  "libolap_perfmodel.a"
)
