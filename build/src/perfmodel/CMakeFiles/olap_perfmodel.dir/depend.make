# Empty dependencies file for olap_perfmodel.
# This may be replaced when dependencies are built.
