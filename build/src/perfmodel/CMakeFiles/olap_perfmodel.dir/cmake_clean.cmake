file(REMOVE_RECURSE
  "CMakeFiles/olap_perfmodel.dir/calibrate.cpp.o"
  "CMakeFiles/olap_perfmodel.dir/calibrate.cpp.o.d"
  "CMakeFiles/olap_perfmodel.dir/cpu_model.cpp.o"
  "CMakeFiles/olap_perfmodel.dir/cpu_model.cpp.o.d"
  "CMakeFiles/olap_perfmodel.dir/dict_model.cpp.o"
  "CMakeFiles/olap_perfmodel.dir/dict_model.cpp.o.d"
  "CMakeFiles/olap_perfmodel.dir/gpu_model.cpp.o"
  "CMakeFiles/olap_perfmodel.dir/gpu_model.cpp.o.d"
  "libolap_perfmodel.a"
  "libolap_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
