file(REMOVE_RECURSE
  "libolap_core.a"
)
