# Empty compiler generated dependencies file for olap_core.
# This may be replaced when dependencies are built.
