file(REMOVE_RECURSE
  "CMakeFiles/olap_core.dir/async_executor.cpp.o"
  "CMakeFiles/olap_core.dir/async_executor.cpp.o.d"
  "CMakeFiles/olap_core.dir/hybrid_system.cpp.o"
  "CMakeFiles/olap_core.dir/hybrid_system.cpp.o.d"
  "libolap_core.a"
  "libolap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
