
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cube/aggregate.cpp" "src/cube/CMakeFiles/olap_cube.dir/aggregate.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/aggregate.cpp.o.d"
  "/root/repo/src/cube/builder.cpp" "src/cube/CMakeFiles/olap_cube.dir/builder.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/builder.cpp.o.d"
  "/root/repo/src/cube/chunked_cube.cpp" "src/cube/CMakeFiles/olap_cube.dir/chunked_cube.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/chunked_cube.cpp.o.d"
  "/root/repo/src/cube/cube_set.cpp" "src/cube/CMakeFiles/olap_cube.dir/cube_set.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/cube_set.cpp.o.d"
  "/root/repo/src/cube/dense_cube.cpp" "src/cube/CMakeFiles/olap_cube.dir/dense_cube.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/dense_cube.cpp.o.d"
  "/root/repo/src/cube/lattice.cpp" "src/cube/CMakeFiles/olap_cube.dir/lattice.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/lattice.cpp.o.d"
  "/root/repo/src/cube/region.cpp" "src/cube/CMakeFiles/olap_cube.dir/region.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/region.cpp.o.d"
  "/root/repo/src/cube/rollup.cpp" "src/cube/CMakeFiles/olap_cube.dir/rollup.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/rollup.cpp.o.d"
  "/root/repo/src/cube/view_cube.cpp" "src/cube/CMakeFiles/olap_cube.dir/view_cube.cpp.o" "gcc" "src/cube/CMakeFiles/olap_cube.dir/view_cube.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/olap_query.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/olap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/olap_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
