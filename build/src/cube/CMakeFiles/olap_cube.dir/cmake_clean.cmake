file(REMOVE_RECURSE
  "CMakeFiles/olap_cube.dir/aggregate.cpp.o"
  "CMakeFiles/olap_cube.dir/aggregate.cpp.o.d"
  "CMakeFiles/olap_cube.dir/builder.cpp.o"
  "CMakeFiles/olap_cube.dir/builder.cpp.o.d"
  "CMakeFiles/olap_cube.dir/chunked_cube.cpp.o"
  "CMakeFiles/olap_cube.dir/chunked_cube.cpp.o.d"
  "CMakeFiles/olap_cube.dir/cube_set.cpp.o"
  "CMakeFiles/olap_cube.dir/cube_set.cpp.o.d"
  "CMakeFiles/olap_cube.dir/dense_cube.cpp.o"
  "CMakeFiles/olap_cube.dir/dense_cube.cpp.o.d"
  "CMakeFiles/olap_cube.dir/lattice.cpp.o"
  "CMakeFiles/olap_cube.dir/lattice.cpp.o.d"
  "CMakeFiles/olap_cube.dir/region.cpp.o"
  "CMakeFiles/olap_cube.dir/region.cpp.o.d"
  "CMakeFiles/olap_cube.dir/rollup.cpp.o"
  "CMakeFiles/olap_cube.dir/rollup.cpp.o.d"
  "CMakeFiles/olap_cube.dir/view_cube.cpp.o"
  "CMakeFiles/olap_cube.dir/view_cube.cpp.o.d"
  "libolap_cube.a"
  "libolap_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
