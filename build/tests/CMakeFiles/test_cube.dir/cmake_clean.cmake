file(REMOVE_RECURSE
  "CMakeFiles/test_cube.dir/cube/test_aggregate.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_aggregate.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_builder.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_builder.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_chunked_cube.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_chunked_cube.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_cube_set.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_cube_set.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_dense_cube.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_dense_cube.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_lattice.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_lattice.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_region.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_region.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_rollup.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_rollup.cpp.o.d"
  "CMakeFiles/test_cube.dir/cube/test_view_cube.cpp.o"
  "CMakeFiles/test_cube.dir/cube/test_view_cube.cpp.o.d"
  "test_cube"
  "test_cube.pdb"
  "test_cube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
