file(REMOVE_RECURSE
  "CMakeFiles/test_relational.dir/relational/test_binary_io.cpp.o"
  "CMakeFiles/test_relational.dir/relational/test_binary_io.cpp.o.d"
  "CMakeFiles/test_relational.dir/relational/test_csv.cpp.o"
  "CMakeFiles/test_relational.dir/relational/test_csv.cpp.o.d"
  "CMakeFiles/test_relational.dir/relational/test_dimensions.cpp.o"
  "CMakeFiles/test_relational.dir/relational/test_dimensions.cpp.o.d"
  "CMakeFiles/test_relational.dir/relational/test_fact_table.cpp.o"
  "CMakeFiles/test_relational.dir/relational/test_fact_table.cpp.o.d"
  "CMakeFiles/test_relational.dir/relational/test_generator.cpp.o"
  "CMakeFiles/test_relational.dir/relational/test_generator.cpp.o.d"
  "CMakeFiles/test_relational.dir/relational/test_names.cpp.o"
  "CMakeFiles/test_relational.dir/relational/test_names.cpp.o.d"
  "CMakeFiles/test_relational.dir/relational/test_schema.cpp.o"
  "CMakeFiles/test_relational.dir/relational/test_schema.cpp.o.d"
  "test_relational"
  "test_relational.pdb"
  "test_relational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
