# Empty dependencies file for test_relational.
# This may be replaced when dependencies are built.
