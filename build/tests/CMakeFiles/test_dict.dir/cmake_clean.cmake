file(REMOVE_RECURSE
  "CMakeFiles/test_dict.dir/dict/test_aho_corasick.cpp.o"
  "CMakeFiles/test_dict.dir/dict/test_aho_corasick.cpp.o.d"
  "CMakeFiles/test_dict.dir/dict/test_dictionary.cpp.o"
  "CMakeFiles/test_dict.dir/dict/test_dictionary.cpp.o.d"
  "CMakeFiles/test_dict.dir/dict/test_dictionary_set.cpp.o"
  "CMakeFiles/test_dict.dir/dict/test_dictionary_set.cpp.o.d"
  "test_dict"
  "test_dict.pdb"
  "test_dict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
