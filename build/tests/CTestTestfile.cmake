# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_relational[1]_include.cmake")
include("/root/repo/build/tests/test_dict[1]_include.cmake")
include("/root/repo/build/tests/test_query[1]_include.cmake")
include("/root/repo/build/tests/test_cube[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
