# Empty dependencies file for async_service.
# This may be replaced when dependencies are built.
