file(REMOVE_RECURSE
  "CMakeFiles/async_service.dir/async_service.cpp.o"
  "CMakeFiles/async_service.dir/async_service.cpp.o.d"
  "async_service"
  "async_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
