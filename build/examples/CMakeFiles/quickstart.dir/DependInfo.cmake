
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/olap/CMakeFiles/olap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/olap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/olap_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/olap_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/olap_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/olap_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/olap_query.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/olap_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/olap_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
