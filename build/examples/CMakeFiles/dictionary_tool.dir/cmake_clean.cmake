file(REMOVE_RECURSE
  "CMakeFiles/dictionary_tool.dir/dictionary_tool.cpp.o"
  "CMakeFiles/dictionary_tool.dir/dictionary_tool.cpp.o.d"
  "dictionary_tool"
  "dictionary_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionary_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
