# Empty dependencies file for dictionary_tool.
# This may be replaced when dependencies are built.
