file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dictionaries.dir/bench_ablation_dictionaries.cpp.o"
  "CMakeFiles/bench_ablation_dictionaries.dir/bench_ablation_dictionaries.cpp.o.d"
  "bench_ablation_dictionaries"
  "bench_ablation_dictionaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dictionaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
