# Empty compiler generated dependencies file for bench_ablation_dictionaries.
# This may be replaced when dependencies are built.
