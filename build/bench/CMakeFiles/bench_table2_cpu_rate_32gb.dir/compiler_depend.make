# Empty compiler generated dependencies file for bench_table2_cpu_rate_32gb.
# This may be replaced when dependencies are built.
