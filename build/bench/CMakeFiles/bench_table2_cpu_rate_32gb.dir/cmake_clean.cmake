file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cpu_rate_32gb.dir/bench_table2_cpu_rate_32gb.cpp.o"
  "CMakeFiles/bench_table2_cpu_rate_32gb.dir/bench_table2_cpu_rate_32gb.cpp.o.d"
  "bench_table2_cpu_rate_32gb"
  "bench_table2_cpu_rate_32gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cpu_rate_32gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
