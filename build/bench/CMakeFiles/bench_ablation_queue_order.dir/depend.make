# Empty dependencies file for bench_ablation_queue_order.
# This may be replaced when dependencies are built.
