file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cpu_rate.dir/bench_table1_cpu_rate.cpp.o"
  "CMakeFiles/bench_table1_cpu_rate.dir/bench_table1_cpu_rate.cpp.o.d"
  "bench_table1_cpu_rate"
  "bench_table1_cpu_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cpu_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
