# Empty compiler generated dependencies file for bench_fig4_cpu_model_4t.
# This may be replaced when dependencies are built.
