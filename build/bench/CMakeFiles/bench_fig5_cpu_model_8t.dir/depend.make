# Empty dependencies file for bench_fig5_cpu_model_8t.
# This may be replaced when dependencies are built.
