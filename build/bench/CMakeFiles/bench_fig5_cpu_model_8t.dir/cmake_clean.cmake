file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cpu_model_8t.dir/bench_fig5_cpu_model_8t.cpp.o"
  "CMakeFiles/bench_fig5_cpu_model_8t.dir/bench_fig5_cpu_model_8t.cpp.o.d"
  "bench_fig5_cpu_model_8t"
  "bench_fig5_cpu_model_8t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cpu_model_8t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
