file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gpu_partitions.dir/bench_fig8_gpu_partitions.cpp.o"
  "CMakeFiles/bench_fig8_gpu_partitions.dir/bench_fig8_gpu_partitions.cpp.o.d"
  "bench_fig8_gpu_partitions"
  "bench_fig8_gpu_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gpu_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
