# Empty dependencies file for bench_fig8_gpu_partitions.
# This may be replaced when dependencies are built.
