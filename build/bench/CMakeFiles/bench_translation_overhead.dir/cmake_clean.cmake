file(REMOVE_RECURSE
  "CMakeFiles/bench_translation_overhead.dir/bench_translation_overhead.cpp.o"
  "CMakeFiles/bench_translation_overhead.dir/bench_translation_overhead.cpp.o.d"
  "bench_translation_overhead"
  "bench_translation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
