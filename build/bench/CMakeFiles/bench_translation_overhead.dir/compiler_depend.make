# Empty compiler generated dependencies file for bench_translation_overhead.
# This may be replaced when dependencies are built.
