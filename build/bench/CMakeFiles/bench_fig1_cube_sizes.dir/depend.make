# Empty dependencies file for bench_fig1_cube_sizes.
# This may be replaced when dependencies are built.
