file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lattice.dir/bench_ablation_lattice.cpp.o"
  "CMakeFiles/bench_ablation_lattice.dir/bench_ablation_lattice.cpp.o.d"
  "bench_ablation_lattice"
  "bench_ablation_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
