# Empty dependencies file for bench_ablation_lattice.
# This may be replaced when dependencies are built.
