# Empty dependencies file for bench_future_translation.
# This may be replaced when dependencies are built.
