file(REMOVE_RECURSE
  "CMakeFiles/bench_future_translation.dir/bench_future_translation.cpp.o"
  "CMakeFiles/bench_future_translation.dir/bench_future_translation.cpp.o.d"
  "bench_future_translation"
  "bench_future_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
