# Empty dependencies file for bench_fig9_dictionary.
# This may be replaced when dependencies are built.
