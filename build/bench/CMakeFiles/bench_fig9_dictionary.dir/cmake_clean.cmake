file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dictionary.dir/bench_fig9_dictionary.cpp.o"
  "CMakeFiles/bench_fig9_dictionary.dir/bench_fig9_dictionary.cpp.o.d"
  "bench_fig9_dictionary"
  "bench_fig9_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
