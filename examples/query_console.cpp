// Query console — an interactive shell over the hybrid OLAP system.
//
// Type queries in the library's query language against a generated retail
// table; each is parsed, scheduled (CPU cubes vs GPU scan), translated if
// it carries string parameters, executed, and cross-checked against the
// table-scan oracle.
//
//   ./query_console [rows]                 — interactive (reads stdin)
//   ./query_console [rows] "query" ...     — batch mode
//
// Language:   sum|count|avg|min|max ( measures... )
//             [ where dim.level in [lo, hi] (and ...) ]
//             [ where dim.level in {"name", ...} ]
// Examples:   sum(measure_0) where time.month in [0, 2]
//             count() where geography.store in {"Marlowick"}
#include <iostream>

#include "olap/hybrid_system.hpp"
#include "query/parser.hpp"
#include "relational/generator.hpp"

using namespace holap;

namespace {

void run_one(HybridOlapSystem& system, const std::string& text) {
  try {
    const Query q = parse_query(text, system.schema());
    const ExecutionReport r = system.execute(q);
    if (r.rejected) {
      std::cout << "  rejected: no partition can process this query\n";
      return;
    }
    std::cout << "  = " << r.answer.value << "   (" << r.answer.row_count
              << " rows, via "
              << (r.queue.kind == QueueRef::kCpu
                      ? std::string("CPU cubes")
                      : "GPU queue " + std::to_string(r.queue.index))
              << (r.translated ? ", translated" : "") << ", est "
              << r.estimated_processing * 1e3 << " ms)\n";
    const QueryAnswer oracle = system.answer_on_gpu(q);
    if (std::abs(oracle.value - r.answer.value) > 1e-6) {
      std::cout << "  !! oracle disagrees: " << oracle.value << "\n";
    }
  } catch (const ParseError& e) {
    std::cout << "  " << e.what() << "\n";
  } catch (const Error& e) {
    std::cout << "  error: " << e.what() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::stoul(argv[1]) : 30'000;
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 9;
  gen.zipf_skew = 0.8;
  gen.text_levels = {{1, 3}, {2, 3}};
  HybridSystemConfig config;
  config.cpu_threads = 4;
  config.cube_levels = {0, 1, 2};
  config.minmax_cubes = true;
  HybridOlapSystem system(
      generate_fact_table(tiny_model_dimensions(), gen), config);

  std::cout << "hybrid OLAP console — " << rows << " rows; dimensions:";
  for (const auto& dim : system.schema().dimensions()) {
    std::cout << ' ' << dim.name() << '(';
    for (int l = 0; l < dim.level_count(); ++l) {
      std::cout << (l ? "/" : "") << dim.level(l).name;
    }
    std::cout << ')';
  }
  std::cout << "; measures: measure_0..measure_3\n";
  const int store_col = system.schema().dimension_column(1, 3);
  std::cout << "example store name: \""
            << system.dictionaries().for_column(store_col).decode(0)
            << "\"\n\n";

  if (argc > 2) {
    for (int i = 2; i < argc; ++i) {
      std::cout << "> " << argv[i] << "\n";
      run_one(system, argv[i]);
    }
    return 0;
  }
  std::string line;
  std::cout << "> " << std::flush;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) run_one(system, line);
    std::cout << "> " << std::flush;
  }
  return 0;
}
