// Dictionary tool — inspect the text-to-integer translation layer.
//
// Builds the per-column dictionaries of a generated retail table, shows
// their contents, translates example query strings with both search
// strategies (timing them), and demonstrates eq. (17)'s linear cost
// directly against this host's measured slope.
//
//   ./dictionary_tool [rows] [probe ...]
//   e.g. ./dictionary_tool 100000 "Marlowick" "Denborough 3"
#include <iostream>

#include "common/table_printer.hpp"
#include "common/timer.hpp"
#include "perfmodel/calibrate.hpp"
#include "query/translator.hpp"
#include "relational/generator.hpp"

using namespace holap;

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::stoul(argv[1]) : 100'000;

  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 21;
  gen.text_levels = {{1, 3}, {2, 3}};
  const FactTable table =
      generate_fact_table(tiny_model_dimensions(), gen);
  const DictionarySet dicts = DictionarySet::build_from_table(table);

  TablePrinter overview({"column", "entries", "memory", "sample strings"});
  for (const int col : dicts.columns()) {
    const Dictionary& dict = dicts.for_column(col);
    std::string samples;
    for (std::int32_t k = 0; k < 3 && k < static_cast<std::int32_t>(
                                              dict.size());
         ++k) {
      if (k) samples += ", ";
      samples += '"' + dict.decode(k) + '"';
    }
    overview.add_row({table.schema().column(col).name,
                      std::to_string(dict.size()),
                      TablePrinter::human_bytes(
                          static_cast<double>(dict.memory_bytes())),
                      samples});
  }
  overview.print(std::cout, "per-column dictionaries (one per text column, "
                            "as §III-F prescribes)");

  // Translate a query through each strategy, timing the search.
  const int store_col = table.schema().dimension_column(1, 3);
  const Dictionary& store_dict = dicts.for_column(store_col);
  std::vector<std::string> probes;
  for (int i = 2; i < argc; ++i) probes.emplace_back(argv[i]);
  if (probes.empty()) {
    probes = {store_dict.decode(1),
              store_dict.decode(static_cast<std::int32_t>(
                  store_dict.size() - 1)),
              "No Such Store"};
  }

  std::cout << '\n';
  TablePrinter lookups({"probe", "linear scan", "hashed", "code"});
  for (const auto& probe : probes) {
    WallTimer t1;
    const auto linear = store_dict.find(probe, DictSearch::kLinearScan);
    const double linear_us = t1.seconds() * 1e6;
    WallTimer t2;
    const auto hashed = store_dict.find(probe, DictSearch::kHashed);
    const double hashed_us = t2.seconds() * 1e6;
    if (linear != hashed) {
      std::cerr << "strategy disagreement!\n";
      return 1;
    }
    lookups.add_row({'"' + probe + '"',
                     TablePrinter::fixed(linear_us, 1) + " us",
                     TablePrinter::fixed(hashed_us, 2) + " us",
                     linear ? std::to_string(*linear) : "(absent)"});
  }
  lookups.print(std::cout, "search strategies on " +
                               std::to_string(store_dict.size()) +
                               "-entry store dictionary");

  // Eq. (17) on this host: measure and fit the linear-scan slope.
  std::cout << '\n';
  DictCalibrationConfig calib;
  calib.lengths = {1'000, 10'000, 100'000};
  calib.searches = 30;
  const DictCalibrationResult fitted = calibrate_dict(calib);
  std::cout << "this host's P_DICT slope: "
            << TablePrinter::scientific(fitted.model.seconds_per_entry(), 3)
            << " s/entry (paper's eq. 17: 1.380e-08 s/entry)\n";
  std::cout << "predicted upper-bound search in a 1M-entry dictionary: "
            << TablePrinter::fixed(
                   fitted.model.search_seconds(1'000'000).value() * 1e3, 2)
            << " ms here vs "
            << TablePrinter::fixed(
                   DictPerfModel::paper().search_seconds(1'000'000).value() * 1e3, 2)
            << " ms on the paper's Xeon.\n";
  return 0;
}
