// Async service — the online hybrid OLAP system under concurrent clients.
//
// Spins up the AsyncHybridExecutor (one worker thread per partition) and a
// set of client threads firing mixed queries; reports throughput, latency
// percentiles, routing and deadline adherence, with every Nth answer
// cross-checked against the table-scan oracle.
//
//   ./async_service [rows] [clients] [queries_per_client]
#include <iostream>
#include <numeric>

#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "olap/async_executor.hpp"
#include "query/workload.hpp"
#include "relational/generator.hpp"

using namespace holap;

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::stoul(argv[1]) : 40'000;
  const int clients = argc > 2 ? std::stoi(argv[2]) : 4;
  const int per_client = argc > 3 ? std::stoi(argv[3]) : 50;

  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 12;
  gen.zipf_skew = 0.8;
  gen.text_levels = {{1, 3}};
  HybridSystemConfig config;
  config.cpu_threads = 2;
  config.cube_levels = {0, 1, 2};
  HybridOlapSystem system(
      generate_fact_table(tiny_model_dimensions(), gen), config);
  AsyncHybridExecutor executor(system);

  std::cout << "async service: " << rows << " rows, " << clients
            << " clients x " << per_client << " queries, "
            << system.device().partition_count()
            << " GPU partition workers + CPU + translation workers\n\n";

  struct ClientResult {
    std::vector<double> latencies;
    std::size_t cpu = 0, gpu = 0, translated = 0, checked = 0;
  };
  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  WallTimer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      WorkloadConfig wl;
      wl.seed = 1000 + static_cast<std::uint64_t>(c);
      wl.text_probability = 0.3;
      QueryGenerator queries(system.schema().dimensions(), system.schema(),
                             wl);
      ClientResult& mine = results[static_cast<std::size_t>(c)];
      for (int i = 0; i < per_client; ++i) {
        const Query q = queries.next();
        WallTimer latency;
        const ExecutionReport report = executor.submit(q).get();
        mine.latencies.push_back(latency.seconds() * 1e3);
        if (report.rejected) continue;
        (report.queue.kind == QueueRef::kCpu ? mine.cpu : mine.gpu) += 1;
        mine.translated += report.translated;
        if (i % 10 == 0) {
          const QueryAnswer oracle = system.answer_on_gpu(q);
          if (std::abs(oracle.value - report.answer.value) > 1e-6) {
            std::cerr << "ORACLE MISMATCH on client " << c << " query "
                      << i << "\n";
            std::exit(1);
          }
          ++mine.checked;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = wall.seconds();
  executor.shutdown();

  std::vector<double> all;
  std::size_t cpu = 0, gpu = 0, translated = 0, checked = 0;
  for (const auto& r : results) {
    all.insert(all.end(), r.latencies.begin(), r.latencies.end());
    cpu += r.cpu;
    gpu += r.gpu;
    translated += r.translated;
    checked += r.checked;
  }

  TablePrinter t({"metric", "value"});
  t.add_row({"completed", std::to_string(executor.completed())});
  t.add_row({"wall time", TablePrinter::fixed(elapsed, 2) + " s"});
  t.add_row({"throughput",
             TablePrinter::fixed(
                 static_cast<double>(executor.completed()) / elapsed, 1) +
                 " Q/s"});
  t.add_row({"mean latency",
             TablePrinter::fixed(summarize(all).mean, 2) + " ms"});
  t.add_row({"p95 latency",
             TablePrinter::fixed(percentile(all, 95.0), 2) + " ms"});
  t.add_row({"CPU : GPU routing",
             std::to_string(cpu) + " : " + std::to_string(gpu)});
  t.add_row({"translated", std::to_string(translated)});
  t.add_row({"oracle-checked", std::to_string(checked) + " (all agreed)"});
  t.print(std::cout, "service statistics");
  return 0;
}
