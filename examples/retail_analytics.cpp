// Retail analytics — the workload class the paper's introduction motivates.
//
// A TPC-DS-like retail star schema (time x geography x product, skewed
// member popularity, text-valued store and brand columns) is generated,
// round-tripped through CSV (the raw-feed + dictionary-encode-on-load path
// of §III-F), and then interrogated with business questions of mixed
// granularity: dashboards (coarse, cube-served) and drill-downs (fine,
// GPU-served), including string-parameter queries.
//
//   ./retail_analytics [rows]
#include <iostream>
#include <sstream>

#include "olap/hybrid_system.hpp"
#include "relational/csv.hpp"
#include "relational/generator.hpp"

using namespace holap;

namespace {

void report(const char* label, HybridOlapSystem& system, const Query& q) {
  const ExecutionReport r = system.execute(q);
  std::cout << label << "\n  " << to_string(q, system.schema().dimensions())
            << "\n  answer " << r.answer.value << " (" << r.answer.row_count
            << " sales rows) via "
            << (r.queue.kind == QueueRef::kCpu ? "CPU cubes" : "GPU scan")
            << (r.translated ? " + translation" : "") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::stoul(argv[1]) : 50'000;

  // Raw feed: generate, export to CSV (strings materialised), re-import
  // with dictionary encoding — the "translation when the database is
  // built" pipeline.
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 7;
  gen.zipf_skew = 1.0;  // popular stores/brands dominate, as in real retail
  gen.text_levels = {{1, 3}, {2, 3}};
  const FactTable raw = generate_fact_table(tiny_model_dimensions(), gen);

  std::stringstream csv;
  write_csv(csv, raw, default_text_decoder(raw.schema()));
  std::cout << "raw CSV feed: " << csv.str().size() / 1024 << " KB\n";

  DictionarySet dicts;
  for (const int col : raw.schema().text_columns()) dicts.create_column(col);
  FactTable table = read_csv(csv, raw.schema(), [&](int col,
                                                    const std::string& s) {
    return dicts.for_column(col).encode_or_add(s);
  });
  std::cout << "loaded " << table.row_count() << " rows; dictionaries: ";
  for (const int col : dicts.columns()) {
    std::cout << table.schema().column(col).name << "="
              << dicts.for_column(col).size() << " entries  ";
  }
  std::cout << "\n\n";

  HybridSystemConfig config;
  config.cpu_threads = 4;
  config.cube_levels = {0, 1, 2};
  config.minmax_cubes = true;
  HybridOlapSystem system(std::move(table), config);

  // Dashboard: revenue by the coarsest grain — cube-served in microseconds.
  Query dashboard;
  dashboard.conditions.push_back({0, 0, 0, 0, {}, {}});  // first "year"
  dashboard.measures = {12};
  report("Q1 dashboard: revenue, first year", system, dashboard);

  // Regional slice at medium grain.
  Query regional;
  regional.conditions.push_back({1, 1, 0, 1, {}, {}});
  regional.conditions.push_back({0, 1, 2, 3, {}, {}});
  regional.measures = {12, 13};
  report("Q2 region slice: two regions, later months", system, regional);

  // Drill-down to item level: finer than any pre-computed cube -> GPU.
  Query drill;
  drill.conditions.push_back({2, 3, 0, 3, {}, {}});
  drill.op = AggOp::kAvg;
  drill.measures = {12};
  report("Q3 drill-down: average ticket for four items", system, drill);

  // String-parameter question: sales at two named stores.
  const int store_col = system.schema().dimension_column(1, 3);
  const Dictionary& store_dict = system.dictionaries().for_column(store_col);
  Query stores;
  Condition by_name;
  by_name.dim = 1;
  by_name.level = 3;
  by_name.text_values = {store_dict.decode(0), store_dict.decode(7)};
  stores.conditions.push_back(by_name);
  stores.conditions.push_back({2, 3, 0, 15, {}, {}});  // fine -> GPU path
  stores.measures = {12};
  report("Q4 named stores: revenue at two stores (string parameters)",
         system, stores);

  // Peak single sale in a region (max over raw rows, min/max cubes).
  Query peak;
  peak.conditions.push_back({1, 0, 0, 0, {}, {}});
  peak.op = AggOp::kMax;
  peak.measures = {12};
  report("Q5 peak sale in region 0", system, peak);

  std::cout << "scheduler: " << system.scheduler().name() << ", deadline "
            << system.config().deadline * 1e3 << " ms per query.\n";
  return 0;
}
