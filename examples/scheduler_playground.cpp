// Scheduler playground — experiment with the §IV system model from the
// command line: pick a policy, an arrival rate, a deadline and a GPU
// partitioning, and watch throughput / deadline adherence / utilisation.
//
//   ./scheduler_playground [policy] [arrival_qps] [deadline_ms] [queries]
//                          [trace.jsonl]
//   e.g. ./scheduler_playground figure10 120 250 3000
//        ./scheduler_playground MET 250 100 3000
//        ./scheduler_playground figure10 0 250 3000   (0 = closed loop)
//        ./scheduler_playground figure10 120 250 3000 trace.jsonl
//   A fifth argument dumps the run's span trace as JSON lines (one span
//   per query lifecycle stage) and prints the observability summary.
#include <fstream>
#include <iostream>

#include "common/table_printer.hpp"
#include "obs/export.hpp"
#include "sim/scenario.hpp"

using namespace holap;

int main(int argc, char** argv) {
  const std::string policy = argc > 1 ? argv[1] : "figure10";
  const double arrival = argc > 2 ? std::stod(argv[2]) : 120.0;
  const double deadline_ms = argc > 3 ? std::stod(argv[3]) : 250.0;
  const std::size_t queries = argc > 4 ? std::stoul(argv[4]) : 3000;
  const std::string trace_path = argc > 5 ? argv[5] : "";

  ScenarioOptions options;
  options.deadline = Seconds{deadline_ms / 1000.0};
  options.cube_levels = {0, 1, 2, 3};
  options.level_weights = {0.2, 0.25, 0.35, 0.2};
  options.mean_selectivity = 0.5;
  const PaperScenario scenario{options};

  std::cout << "system model: CPU " << options.cpu_threads
            << " threads + translation partition; GPU {1,1,2,2,4,4} SMs; "
               "cubes ~4KB/~500KB/~512MB/~32GB;\n4 GB fact table; policy="
            << policy << "; deadline=" << deadline_ms << " ms; "
            << (arrival > 0 ? "open-loop " + std::to_string(arrival) + " Q/s"
                            : std::string("closed loop, 16 clients"))
            << "; " << queries << " queries\n\n";

  const auto workload = scenario.make_workload(queries);
  const auto p = scenario.make_policy(policy);
  SimConfig config;
  config.arrival_rate = arrival;
  config.closed_clients = 16;
  config.cpu_overhead = Seconds{0.005};
  config.gpu_dispatch_overhead = Seconds{0.0145};
  TraceRecorder recorder;
  config.recorder = &recorder;
  const SimResult r = run_simulation(*p, workload, config);

  TablePrinter t({"metric", "value"});
  t.add_row({"throughput", TablePrinter::fixed(r.throughput_qps, 1) + " Q/s"});
  t.add_row({"completed / rejected", std::to_string(r.completed) + " / " +
                                         std::to_string(r.rejected)});
  t.add_row({"deadline hit rate",
             TablePrinter::fixed(100.0 * r.deadline_hit_rate, 1) + "%"});
  t.add_row({"mean / p95 latency",
             TablePrinter::fixed(r.mean_latency.value() * 1e3, 1) + " / " +
                 TablePrinter::fixed(r.p95_latency.value() * 1e3, 1) + " ms"});
  t.add_row({"CPU : GPU routing", std::to_string(r.cpu_queries) + " : " +
                                      std::to_string(r.gpu_queries)});
  t.add_row({"translated queries", std::to_string(r.translated_queries)});
  t.add_row({"CPU partition busy",
             TablePrinter::fixed(100.0 * r.cpu_utilization, 1) + "%"});
  t.add_row({"translation partition busy",
             TablePrinter::fixed(100.0 * r.translation_utilization, 1) +
                 "%"});
  t.add_row({"GPU dispatcher busy",
             TablePrinter::fixed(100.0 * r.dispatcher_utilization, 1) +
                 "%"});
  for (std::size_t i = 0; i < r.gpu_utilization.size(); ++i) {
    t.add_row({"GPU queue " + std::to_string(i) + " (" +
                   std::to_string(options.gpu_partitions[i]) + " SM) busy",
               TablePrinter::fixed(100.0 * r.gpu_utilization[i], 1) + "%"});
  }
  t.print(std::cout, "simulation result");

  std::cout << '\n';
  const auto spans = recorder.snapshot();
  print_trace_summary(std::cout, spans, r.latency_histogram, r.partitions,
                      r.makespan);
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    write_jsonl(out, spans);
    std::cout << "\nwrote " << spans.size() << " spans to " << trace_path
              << '\n';
  }
  return 0;
}
