// Scheduler playground — experiment with the §IV system model from the
// command line: pick a policy, an arrival rate, a deadline and a GPU
// partitioning, and watch throughput / deadline adherence / utilisation.
//
//   ./scheduler_playground [options] [policy] [arrival_qps] [deadline_ms]
//                          [queries] [trace.jsonl]
//   e.g. ./scheduler_playground figure10 120 250 3000
//        ./scheduler_playground MET 250 100 3000
//        ./scheduler_playground figure10 0 250 3000   (0 = closed loop)
//        ./scheduler_playground figure10 120 250 3000 trace.jsonl
//   A fifth argument dumps the run's span trace as JSON lines (one span
//   per query lifecycle stage) and prints the observability summary.
//
// Fault-tolerance options (each may repeat; enabling any turns the
// health monitor / circuit breakers / retry policy on):
//   --fail-partition <id>@<t>     crash partition <id> at sim-time <t> s
//   --recover-partition <id>@<t>  recover partition <id> at <t> s
//   <id> is `cpu` or a GPU queue index (0-5 in the paper layout).
//   e.g. ./scheduler_playground --fail-partition 4@0.2 \
//            --recover-partition 4@0.7 figure10 800 250 3000
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table_printer.hpp"
#include "obs/export.hpp"
#include "sim/fault_injector.hpp"
#include "sim/scenario.hpp"

using namespace holap;

namespace {

/// Parse `<id>@<t>` (id = `cpu` or a GPU queue index) into a timed fault.
bool parse_fault(const std::string& spec, TimedFault::Kind kind,
                 std::vector<TimedFault>& out) {
  const std::size_t at = spec.find('@');
  if (at == std::string::npos || at + 1 >= spec.size()) return false;
  const std::string id = spec.substr(0, at);
  TimedFault fault;
  fault.kind = kind;
  try {
    fault.ref = id == "cpu"
                    ? FaultInjector::cpu_ref()
                    : QueueRef{QueueRef::kGpu, std::stoi(id)};
    fault.at = Seconds{std::stod(spec.substr(at + 1))};
  } catch (const std::exception&) {
    return false;
  }
  out.push_back(fault);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<TimedFault> faults;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fail-partition" || arg == "--recover-partition") {
      const auto kind = arg == "--fail-partition"
                            ? TimedFault::Kind::kCrash
                            : TimedFault::Kind::kRecover;
      if (i + 1 >= argc || !parse_fault(argv[++i], kind, faults)) {
        std::cerr << arg << " expects <id>@<t> (e.g. 4@0.2 or cpu@0.5)\n";
        return 1;
      }
    } else {
      positional.push_back(arg);
    }
  }
  const std::string policy = positional.size() > 0 ? positional[0]
                                                   : "figure10";
  const double arrival =
      positional.size() > 1 ? std::stod(positional[1]) : 120.0;
  const double deadline_ms =
      positional.size() > 2 ? std::stod(positional[2]) : 250.0;
  const std::size_t queries =
      positional.size() > 3 ? std::stoul(positional[3]) : 3000;
  const std::string trace_path = positional.size() > 4 ? positional[4] : "";

  ScenarioOptions options;
  options.deadline = Seconds{deadline_ms / 1000.0};
  options.cube_levels = {0, 1, 2, 3};
  options.level_weights = {0.2, 0.25, 0.35, 0.2};
  options.mean_selectivity = 0.5;
  options.fault_tolerance.enabled = !faults.empty();
  const PaperScenario scenario{options};

  std::cout << "system model: CPU " << options.cpu_threads
            << " threads + translation partition; GPU {1,1,2,2,4,4} SMs; "
               "cubes ~4KB/~500KB/~512MB/~32GB;\n4 GB fact table; policy="
            << policy << "; deadline=" << deadline_ms << " ms; "
            << (arrival > 0 ? "open-loop " + std::to_string(arrival) + " Q/s"
                            : std::string("closed loop, 16 clients"))
            << "; " << queries << " queries\n";
  FaultInjector injector;
  for (const TimedFault& f : faults) {
    injector.schedule_fault(f);
    std::cout << (f.kind == TimedFault::Kind::kCrash ? "fault: crash "
                                                     : "fault: recover ")
              << (f.ref.kind == QueueRef::kCpu
                      ? std::string("cpu")
                      : "gpu" + std::to_string(f.ref.index))
              << " at t=" << f.at.value() << " s\n";
  }
  std::cout << '\n';

  const auto workload = scenario.make_workload(queries);
  const auto p = scenario.make_policy(policy);
  SimConfig config;
  config.arrival_rate = arrival;
  config.closed_clients = 16;
  config.cpu_overhead = Seconds{0.005};
  config.gpu_dispatch_overhead = Seconds{0.0145};
  if (!faults.empty()) config.fault = &injector;
  TraceRecorder recorder;
  config.recorder = &recorder;
  const SimResult r = run_simulation(*p, workload, config);

  TablePrinter t({"metric", "value"});
  t.add_row({"throughput", TablePrinter::fixed(r.throughput_qps, 1) + " Q/s"});
  t.add_row({"completed / rejected", std::to_string(r.completed) + " / " +
                                         std::to_string(r.rejected)});
  t.add_row({"deadline hit rate",
             TablePrinter::fixed(100.0 * r.deadline_hit_rate, 1) + "%"});
  t.add_row({"mean / p95 latency",
             TablePrinter::fixed(r.mean_latency.value() * 1e3, 1) + " / " +
                 TablePrinter::fixed(r.p95_latency.value() * 1e3, 1) + " ms"});
  t.add_row({"CPU : GPU routing", std::to_string(r.cpu_queries) + " : " +
                                      std::to_string(r.gpu_queries)});
  t.add_row({"translated queries", std::to_string(r.translated_queries)});
  if (!faults.empty()) {
    t.add_row({"partition faults", std::to_string(r.partition_faults)});
    t.add_row({"retries / failed over", std::to_string(r.retries) + " / " +
                                            std::to_string(r.failed_over)});
    t.add_row({"exhausted retries", std::to_string(r.exhausted_retries)});
  }
  t.add_row({"CPU partition busy",
             TablePrinter::fixed(100.0 * r.cpu_utilization, 1) + "%"});
  t.add_row({"translation partition busy",
             TablePrinter::fixed(100.0 * r.translation_utilization, 1) +
                 "%"});
  t.add_row({"GPU dispatcher busy",
             TablePrinter::fixed(100.0 * r.dispatcher_utilization, 1) +
                 "%"});
  for (std::size_t i = 0; i < r.gpu_utilization.size(); ++i) {
    t.add_row({"GPU queue " + std::to_string(i) + " (" +
                   std::to_string(options.gpu_partitions[i]) + " SM) busy",
               TablePrinter::fixed(100.0 * r.gpu_utilization[i], 1) + "%"});
  }
  t.print(std::cout, "simulation result");

  if (!faults.empty()) {
    std::cout << '\n';
    TablePrinter health({"partition", "health", "failed", "retried",
                         "failovers", "breaker transitions"});
    for (const PartitionCounters& c : r.partitions) {
      if (c.failed + c.retried + c.failovers + c.breaker_transitions == 0 &&
          c.health == "healthy") {
        continue;  // only partitions the faults actually touched
      }
      health.add_row({c.name, c.health, std::to_string(c.failed),
                      std::to_string(c.retried),
                      std::to_string(c.failovers),
                      std::to_string(c.breaker_transitions)});
    }
    health.print(std::cout, "partition health");
  }

  std::cout << '\n';
  const auto spans = recorder.snapshot();
  print_trace_summary(std::cout, spans, r.latency_histogram, r.partitions,
                      r.makespan);
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    write_jsonl(out, spans);
    std::cout << "\nwrote " << spans.size() << " spans to " << trace_path
              << '\n';
  }
  return 0;
}
