// Quickstart — the whole system in one page.
//
// Builds a small synthetic fact table, stands up the hybrid OLAP system
// (cubes + dictionaries + simulated GPU + Figure-10 scheduler), and runs a
// handful of queries end-to-end, printing where each one was scheduled and
// what it answered.
//
//   ./quickstart [rows]
#include <iostream>

#include "olap/hybrid_system.hpp"
#include "query/query_builder.hpp"
#include "relational/generator.hpp"

using namespace holap;

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::stoul(argv[1]) : 20'000;

  // 1. A fact table: 3 dimensions x 4 levels, four measures, one
  //    dict-encoded text column (finest geography level).
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 42;
  gen.zipf_skew = 0.8;
  gen.text_levels = {{1, 3}};
  FactTable table = generate_fact_table(tiny_model_dimensions(), gen);
  std::cout << "fact table: " << table.row_count() << " rows, "
            << table.schema().column_count() << " columns, "
            << table.size_bytes() / 1024 << " KB\n";

  // 2. The hybrid system: pre-computes cubes at levels 0-2, builds the
  //    per-column dictionaries, uploads the table to the simulated Tesla
  //    C2070 and partitions it as {1,1,2,2,4,4} SMs.
  HybridSystemConfig config;
  config.cpu_threads = 4;
  config.cube_levels = {0, 1, 2};
  HybridOlapSystem system(std::move(table), config);
  std::cout << "cubes: levels {0,1,2}, " << system.cubes().total_bytes()
            << " bytes; dictionaries: "
            << system.dictionaries().memory_bytes() << " bytes; device: "
            << system.device().spec().name << "\n\n";

  // 3. Queries. A coarse one (cube-friendly), a fine one (GPU-only), and
  //    a text query (translated before it reaches the GPU).
  const Query coarse = QueryBuilder(system.schema())
                           .sum({"measure_0"})
                           .where("time", "month", 0, 1)
                           .build();

  const Query fine = QueryBuilder(system.schema())
                         .sum({"measure_0", "measure_1"})
                         .where("product", "item", 0, 7)
                         .build();

  const int city_col = system.schema().dimension_column(1, 3);
  const Query text =
      QueryBuilder(system.schema())
          .sum({"measure_0"})
          .where_text("geography", "store",
                      {system.dictionaries().for_column(city_col).decode(3)})
          .where("time", "hour", 0, 15)  // force GPU-only resolution
          .build();

  for (const auto& [name, q] :
       {std::pair<const char*, const Query&>{"coarse", coarse},
        {"fine", fine},
        {"text", text}}) {
    const ExecutionReport report = system.execute(q);
    std::cout << name << ": "
              << to_string(q, system.schema().dimensions()) << "\n"
              << "  -> "
              << (report.queue.kind == QueueRef::kCpu
                      ? std::string("CPU cube partition")
                      : "GPU partition queue " +
                            std::to_string(report.queue.index))
              << (report.translated ? " (after text-to-integer translation)"
                                    : "")
              << "\n  answer = " << report.answer.value << " over "
              << report.answer.row_count << " rows; estimated "
              << report.estimated_processing * 1e3 << " ms, measured "
              << report.measured_processing * 1e3 << " ms\n\n";

    // Cross-check against the full-device scan oracle.
    const QueryAnswer oracle = system.answer_on_gpu(q);
    if (std::abs(oracle.value - report.answer.value) > 1e-6) {
      std::cerr << "ANSWER MISMATCH vs oracle!\n";
      return 1;
    }
  }
  std::cout << "all answers verified against the table-scan oracle.\n";
  return 0;
}
